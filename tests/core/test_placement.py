"""Tests for thread placement policies."""

import pytest

from repro.core import PlacementPolicy, SamhitaConfig, SamhitaSystem
from repro.core.placement import choose_component
from repro.errors import BackendError


class TestChooseComponent:
    COMPONENTS = ["a", "b"]
    CORES = {"a": 2, "b": 2}

    def test_packed_fills_first_component(self):
        load = {}
        picks = []
        for _ in range(4):
            comp = choose_component(PlacementPolicy.PACKED, self.COMPONENTS,
                                    self.CORES, load)
            load[comp] = load.get(comp, 0) + 1
            picks.append(comp)
        assert picks == ["a", "a", "b", "b"]

    def test_round_robin_deals_across_components(self):
        load = {}
        picks = []
        for _ in range(4):
            comp = choose_component(PlacementPolicy.ROUND_ROBIN,
                                    self.COMPONENTS, self.CORES, load)
            load[comp] = load.get(comp, 0) + 1
            picks.append(comp)
        assert picks == ["a", "b", "a", "b"]

    def test_exhaustion_raises(self):
        load = {"a": 2, "b": 2}
        for policy in PlacementPolicy:
            with pytest.raises(BackendError):
                choose_component(policy, self.COMPONENTS, self.CORES, load)


class TestSystemPlacement:
    def test_cluster_default_packs_like_the_paper(self):
        system = SamhitaSystem.cluster(n_threads=16)
        for _ in range(16):
            system.add_thread()
        comps = {system.component_of(t) for t in system.thread_ids[:8]}
        assert len(comps) == 1  # first 8 threads share one node

    def test_hetero_round_robin_spreads_across_coprocessors(self):
        system = SamhitaSystem.hetero(n_coprocessors=2,
                                      placement=PlacementPolicy.ROUND_ROBIN)
        tids = [system.add_thread() for _ in range(8)]
        per_mic = {}
        for t in tids:
            per_mic.setdefault(system.component_of(t), []).append(t)
        assert sorted(len(v) for v in per_mic.values()) == [4, 4]

    def test_explicit_component_respected(self):
        system = SamhitaSystem.hetero(n_coprocessors=2)
        tid = system.add_thread(component="mic1")
        assert system.component_of(tid) == "mic1"

    def test_unknown_component_rejected(self):
        system = SamhitaSystem.hetero(n_coprocessors=1)
        with pytest.raises(BackendError):
            system.add_thread(component="mic7")

    def test_spreading_relieves_pcie_contention(self):
        """Two coprocessors give two PCIe buses: spreading the same thread
        count across them beats packing them onto one."""
        import numpy as np

        def run(placement):
            config = SamhitaConfig(functional=False)
            system = SamhitaSystem.hetero(n_coprocessors=2, config=config,
                                          placement=placement)
            tids = [system.add_thread() for _ in range(8)]
            bar = system.create_barrier(len(tids))

            def body(tid):
                addr = yield from system.malloc(tid, 512 << 10)
                # Stream enough data to saturate a PCIe bus.
                for off in range(0, 512 << 10, 4096):
                    yield from system.mem_read(tid, addr + off, 8)
                yield from system.barrier_wait(tid, bar)

            for tid in tids:
                system.process(body(tid), name=f"t{tid}")
            return system.run()

        packed = run(PlacementPolicy.PACKED)
        spread = run(PlacementPolicy.ROUND_ROBIN)
        assert spread < packed
