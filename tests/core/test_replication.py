"""Replication-layer units: WAL, home remap, page integrity, config.

The end-to-end kill tests live in ``tests/chaos/test_failover.py``; this
file pins the pieces down in isolation -- write-ahead log bookkeeping
(pending sets, acks, pruning, dead-target drops), the directory's failover
indirection, CRC integrity semantics on the backing store, and the config
validation / default-off gating of the whole subsystem.
"""

import numpy as np
import pytest

from repro.core import SamhitaConfig, SamhitaSystem
from repro.errors import ReproError
from repro.faults import FaultPlan, permanent_crash
from repro.memory.backing import CRC_CORRUPT, BackingStore, payload_crc_ok
from repro.memory.diff import PageDiff
from repro.memory.directory import PageDirectory
from repro.memory.layout import MemoryLayout
from repro.memory.storelog import ReplicationLog


def make_diff(page: int, offset: int = 0, data: bytes = b"\x2a") -> PageDiff:
    arr = np.frombuffer(data, dtype=np.uint8).copy()
    return PageDiff(page, spans=[(offset, arr)])


class TestReplicationLog:
    def test_append_assigns_lsns_and_pending_targets(self):
        wal = ReplicationLog(0)
        e0 = wal.append(7, make_diff(7), targets=(1, 2))
        e1 = wal.append(9, make_diff(9), targets=(1,))
        assert (e0.lsn, e1.lsn) == (0, 1)
        assert e0.pending == {1, 2}
        assert [e.lsn for e in wal.unshipped(1)] == [0, 1]
        assert [e.lsn for e in wal.unshipped(2)] == [0]

    def test_append_without_live_targets_logs_nothing(self):
        wal = ReplicationLog(0)
        assert wal.append(7, make_diff(7), targets=()) is None
        assert len(wal) == 0
        assert wal.stats.counters["wal_appends"] == 0

    def test_ack_prunes_fully_acknowledged_entries(self):
        wal = ReplicationLog(0)
        wal.append(7, make_diff(7), targets=(1, 2))
        wal.append(9, make_diff(9), targets=(1,))
        wal.ack(1, wal.unshipped(1))
        # Entry 0 still owes target 2; entry 1 is gone.
        assert [e.page for e in wal.entries] == [7]
        assert wal.stats.counters["wal_pruned"] == 1
        wal.ack(2, wal.unshipped(2))
        assert len(wal) == 0
        assert wal.stats.counters["wal_pruned"] == 2

    def test_drop_target_releases_a_dead_backup(self):
        wal = ReplicationLog(0)
        wal.append(7, make_diff(7), targets=(1,))
        wal.append(8, make_diff(8), targets=(1, 2))
        wal.drop_target(1)
        assert [e.page for e in wal.entries] == [8]
        assert wal.unshipped(1) == []

    def test_unshipped_for_page_filters_the_repair_merge_set(self):
        wal = ReplicationLog(0)
        wal.append(7, make_diff(7, 0), targets=(1,))
        wal.append(8, make_diff(8, 0), targets=(1,))
        wal.append(7, make_diff(7, 4), targets=(1,))
        entries = wal.unshipped_for_page(7, 1)
        assert [e.lsn for e in entries] == [0, 2]


class TestHomeRemap:
    def test_resolve_is_identity_until_a_failover(self):
        d = PageDirectory()
        assert d.resolve_home(0) == 0
        assert d.resolve_home(3) == 3

    def test_remap_points_dead_home_at_promoted(self):
        d = PageDirectory()
        d.remap_home(dead=1, promoted=2)
        assert d.resolve_home(1) == 2
        assert d.resolve_home(2) == 2
        assert d.stats.counters["home_remaps"] == 1

    def test_chained_failures_stay_single_hop(self):
        d = PageDirectory()
        d.remap_home(dead=1, promoted=2)
        d.remap_home(dead=2, promoted=3)
        # Pages logically homed on 1 resolve straight to 3, not via 2.
        assert d.resolve_home(1) == 3
        assert d.resolve_home(2) == 3


class TestPageIntegrity:
    def _store(self, functional=True):
        store = BackingStore(MemoryLayout(page_bytes=64),
                             functional=functional)
        store.integrity = True
        return store

    def test_crc_round_trips_a_clean_page(self):
        store = self._store()
        store.apply_diff(make_diff(3, 0, b"\x11\x22"))
        crc = store.page_crc(3)
        assert payload_crc_ok(store.read_page(3), crc)

    def test_corrupt_page_keeps_the_stale_crc(self):
        store = self._store()
        store.apply_diff(make_diff(3, 0, b"\x11\x22"))
        store.page_crc(3)
        store.corrupt_page(3)
        assert not payload_crc_ok(store.read_page(3), store.page_crc(3))
        assert store.stats.counters["pages_rotted"] == 1

    def test_apply_diff_never_launders_corruption(self):
        """Merging new diffs into a rotted frame must not refresh the CRC:
        the rot stays detectable until a replica repair."""
        store = self._store()
        store.apply_diff(make_diff(3, 0, b"\x11"))
        store.corrupt_page(3)
        store.apply_diff(make_diff(3, 8, b"\x77"))
        assert not payload_crc_ok(store.read_page(3), store.page_crc(3))

    def test_restore_page_clears_the_rot(self):
        store = self._store()
        store.apply_diff(make_diff(3, 0, b"\x11"))
        store.corrupt_page(3)
        clean = np.zeros(64, dtype=np.uint8)
        clean[0] = 0x11
        store.restore_page(3, clean)
        assert payload_crc_ok(store.read_page(3), store.page_crc(3))
        assert store.stats.counters["pages_restored"] == 1

    def test_timing_mode_uses_the_corruption_sentinel(self):
        store = self._store(functional=False)
        store.apply_diff(PageDiff(3, spans=[(0, None)], sizes=[4]))
        assert payload_crc_ok(None, store.page_crc(3))
        store.corrupt_page(3)
        assert store.page_crc(3) == CRC_CORRUPT
        assert not payload_crc_ok(None, store.page_crc(3))

    def test_integrity_off_means_no_crc_bookkeeping(self):
        store = BackingStore(MemoryLayout(page_bytes=64), functional=True)
        store.apply_diff(make_diff(3, 0, b"\x11"))
        assert store.frames[3].crc is None
        assert payload_crc_ok(store.read_page(3), None)


class TestConfigValidation:
    def test_replication_factor_must_fit_the_server_count(self):
        with pytest.raises(ReproError):
            SamhitaConfig(replication_factor=2)  # n_memory_servers=1
        with pytest.raises(ReproError):
            SamhitaConfig(replication_factor=0)
        cfg = SamhitaConfig(n_memory_servers=2, replication_factor=2)
        assert cfg.replication_factor == 2

    def test_heartbeat_knobs_are_validated(self):
        with pytest.raises(ReproError):
            SamhitaConfig(heartbeat_interval=0.0)
        with pytest.raises(ReproError):
            SamhitaConfig(heartbeat_misses=0)

    def test_permanent_crash_plan_is_validated(self):
        with pytest.raises(ReproError):
            FaultPlan(seed=1, permanent_crashes=(("node1", -1.0),))
        with pytest.raises(ReproError):
            FaultPlan(seed=1, bitrot_rate=1.5)
        plan = permanent_crash(3, "node1", at=1e-4, bitrot_rate=0.01)
        assert plan.permanent_crashes == (("node1", 1e-4),)
        assert not plan.silent


class TestDefaultOff:
    def test_rf1_system_has_no_replication_machinery(self):
        system = SamhitaSystem.cluster(n_threads=1)
        assert system.detector is None
        for server in system.memory_servers:
            assert server.wal is None
            assert not server.backing.integrity
        assert "replication" not in system.stats_report()

    def test_rf2_system_arms_wal_and_integrity(self):
        config = SamhitaConfig(n_memory_servers=2, replication_factor=2)
        system = SamhitaSystem.cluster(n_threads=1, config=config)
        for server in system.memory_servers:
            assert server.wal is not None
            assert server.backing.integrity
        # No fault plan -> nothing to detect failures with.
        assert system.detector is None
        assert system.replica_ring(0) == [0, 1]
        assert system.replica_ring(1) == [1, 0]
        assert "replication" in system.stats_report()

    def test_detector_armed_with_faults_and_replication(self):
        plan = permanent_crash(3, "node1", at=1e-3)
        config = SamhitaConfig(n_memory_servers=2, replication_factor=2,
                               faults=plan)
        system = SamhitaSystem.cluster(n_threads=1, config=config)
        assert system.detector is not None
        assert system.injector.detector is system.detector
