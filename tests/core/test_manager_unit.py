"""Direct unit tests of the Manager's protocol state machines."""

import pytest

from repro.core import SamhitaConfig, SamhitaSystem
from repro.errors import SynchronizationError
from tests.core.conftest import run_threads


@pytest.fixture
def system():
    sys_ = SamhitaSystem.cluster(n_threads=4)
    for _ in range(4):
        sys_.add_thread()
    return sys_


class TestLockStateMachine:
    def test_fifo_handoff_order(self, system):
        lock = system.create_lock()
        order = []

        def body(tid):
            from repro.sim import Timeout
            yield Timeout(tid * 1e-6)  # deterministic arrival order
            yield from system.acquire_lock(tid, lock)
            order.append(tid)
            yield Timeout(50e-6)
            yield from system.release_lock(tid, lock)

        run_threads(system, [body(t) for t in system.thread_ids])
        assert order == [0, 1, 2, 3]

    def test_unknown_lock_id_rejected(self, system):
        def body():
            with pytest.raises(SynchronizationError):
                yield from system.acquire_lock(0, 999)

        run_threads(system, [body()])

    def test_holds_lock_query(self, system):
        lock = system.create_lock()

        def body():
            assert not system.manager.holds_lock(0, lock)
            yield from system.acquire_lock(0, lock)
            assert system.manager.holds_lock(0, lock)
            assert not system.manager.holds_lock(1, lock)
            yield from system.release_lock(0, lock)
            assert not system.manager.holds_lock(0, lock)

        run_threads(system, [body()])


class TestBarrierStateMachine:
    def test_double_arrival_same_generation_rejected(self, system):
        bar = system.create_barrier(2)

        def sneaky():
            # Arrive twice without any other party: second arrival belongs
            # to the same generation and must be rejected.
            state = system.manager._barrier(bar)
            state.arrived[0] = []
            with pytest.raises(SynchronizationError):
                yield from system.manager.barrier_arrive(0, "node2", bar, [])

        run_threads(system, [sneaky()])

    def test_zero_party_barrier_rejected(self, system):
        with pytest.raises(SynchronizationError):
            system.create_barrier(0)

    def test_generation_counter_advances(self, system):
        bar = system.create_barrier(4)

        def body(tid):
            for _ in range(3):
                yield from system.barrier_wait(tid, bar)

        run_threads(system, [body(t) for t in system.thread_ids])
        assert system.manager._barrier(bar).generation == 3

    def test_unknown_barrier_rejected(self, system):
        def body():
            with pytest.raises(SynchronizationError):
                yield from system.barrier_wait(0, 999)

        run_threads(system, [body()])


class TestCondStateMachine:
    def test_signal_with_no_waiters_returns_zero(self, system):
        cond = system.create_cond()

        def body():
            woken = yield from system.cond_signal(0, cond)
            return woken

        [p] = [system.process(body(), name="t0")]
        system.run()
        assert p.done_event.value == 0

    def test_unknown_cond_rejected(self, system):
        def body():
            with pytest.raises(SynchronizationError):
                yield from system.cond_signal(0, 999)

        run_threads(system, [body()])


class TestKnownThreads:
    def test_population_registered(self, system):
        assert system.manager.known_threads == {0, 1, 2, 3}
