"""Tests for RegC region tracking (the store-instrumentation analogue)."""

import pytest

from repro.core.regions import RegionTracker
from repro.errors import ConsistencyError


def test_starts_outside_region():
    t = RegionTracker()
    assert not t.in_consistency_region
    assert t.depth == 0


def test_enter_leave():
    t = RegionTracker()
    t.enter()
    assert t.in_consistency_region
    t.leave()
    assert not t.in_consistency_region


def test_nesting():
    t = RegionTracker()
    t.enter()
    t.enter()
    t.leave()
    assert t.in_consistency_region
    t.leave()
    assert not t.in_consistency_region


def test_leave_without_enter_rejected():
    with pytest.raises(ConsistencyError):
        RegionTracker().leave()


def test_context_manager():
    t = RegionTracker()
    with t.region():
        assert t.in_consistency_region
    assert not t.in_consistency_region


def test_context_manager_restores_on_exception():
    t = RegionTracker()
    with pytest.raises(RuntimeError):
        with t.region():
            raise RuntimeError("boom")
    assert not t.in_consistency_region


def test_classify_store_counts_by_region():
    t = RegionTracker()
    assert t.classify_store(8) is False
    t.enter()
    assert t.classify_store(16) is True
    t.leave()
    assert t.stats.get("ordinary_stores") == 1
    assert t.stats.get("cr_stores") == 1
    assert t.stats.get("cr_store_bytes") == 16
    assert t.stats.get("ordinary_store_bytes") == 8
