"""Integration tests: allocation, demand paging, prefetch, eviction,
recall -- driven through a whole SamhitaSystem."""

import numpy as np
import pytest

from repro.core import SamhitaConfig, SamhitaSystem
from repro.errors import MemoryError_
from tests.core.conftest import run_threads, u8

PAGE = 4096
LINE = 4 * PAGE


class TestMallocPaths:
    def test_arena_alloc_needs_one_rpc_then_is_local(self, cluster2):
        system, (t0, _) = cluster2
        addrs = []

        def body():
            for _ in range(10):
                addrs.append((yield from system.malloc(t0, 1024)))

        run_threads(system, [body()])
        assert len(set(addrs)) == 10
        # One arena refill RPC serves all ten small allocations.
        assert system.manager.stats.get("allocs") == 1

    def test_shared_alloc_goes_through_manager(self, cluster2):
        system, (t0, _) = cluster2

        def body():
            yield from system.malloc(t0, 128 << 10)

        run_threads(system, [body()])
        assert system.allocator.stats.get("shared_allocs") == 1
        assert system.manager.stats.get("allocs") == 1

    def test_striped_alloc_for_large_requests(self, cluster2):
        system, (t0, _) = cluster2

        def body():
            yield from system.malloc(t0, 2 << 20)

        run_threads(system, [body()])
        assert system.allocator.stats.get("striped_allocs") == 1

    def test_free_arena_is_local_free_shared_rpcs(self, cluster2):
        system, (t0, _) = cluster2

        def body():
            small = yield from system.malloc(t0, 64)
            big = yield from system.malloc(t0, 128 << 10)
            yield from system.free(t0, small)
            before = system.manager.stats.get("requests")
            yield from system.free(t0, big)
            assert system.manager.stats.get("requests") > before

        run_threads(system, [body()])


class TestDemandPaging:
    def test_first_read_faults_whole_line_second_read_hits(self, cluster2):
        system, (t0, _) = cluster2

        def body():
            addr = yield from system.malloc(t0, 128 << 10)
            yield from system.mem_read(t0, addr, 8)
            cache = system.cache_of(t0)
            # Every allocated page of the faulted line is now resident.
            line = cache.layout.line_of_addr(addr)
            first_page = cache.layout.page_of(addr)
            for page in cache.layout.line_pages(line):
                if page >= first_page:
                    assert cache.resident(page)
            faults_before = system.compute_server_of(t0).stats.get("faults")
            yield from system.mem_read(t0, addr + PAGE, 8)  # same line
            assert system.compute_server_of(t0).stats.get("faults") == faults_before

        run_threads(system, [body()])

    def test_fault_takes_simulated_time(self, cluster2):
        system, (t0, _) = cluster2
        times = {}

        def body():
            addr = yield from system.malloc(t0, 128 << 10)
            start = system.engine.now
            yield from system.mem_read(t0, addr, 8)
            times["fault"] = system.engine.now - start
            start = system.engine.now
            yield from system.mem_read(t0, addr, 8)
            times["hit"] = system.engine.now - start

        run_threads(system, [body()])
        assert times["fault"] > 5e-6      # network + server + install
        assert times["hit"] == 0.0         # pure cache hit costs no extra time

    def test_write_read_roundtrip_through_dsm(self, cluster2):
        system, (t0, _) = cluster2
        out = {}

        def body():
            addr = yield from system.malloc(t0, 128 << 10)
            payload = np.arange(256, dtype=np.uint8)
            yield from system.mem_write(t0, addr + 100, 256, payload)
            out["data"] = (yield from system.mem_read(t0, addr + 100, 256)).copy()

        run_threads(system, [body()])
        assert np.array_equal(out["data"], np.arange(256, dtype=np.uint8))

    def test_unallocated_access_rejected(self, cluster2):
        system, (t0, _) = cluster2

        def body():
            with pytest.raises(MemoryError_):
                yield from system.mem_read(t0, 50 << 20, 8)

        run_threads(system, [body()])


class TestPrefetch:
    def test_adjacent_line_prefetched(self, cluster2):
        system, (t0, _) = cluster2

        def body():
            addr = yield from system.malloc(t0, 256 << 10)
            yield from system.mem_read(t0, addr, 8)

        run_threads(system, [body()])
        cs = system.compute_server_of(t0)
        # The batched protocol carries the prediction as speculative
        # riders on the demand trip; the per-operation path spawns an
        # async prefetch daemon. Either way the adjacent line was pulled.
        assert (cs.stats.get("prefetches_issued")
                + cs.stats.get("speculative_riders")) >= 1

    def test_sequential_scan_hits_prefetched_lines(self, cluster2):
        system, (t0, _) = cluster2

        def body():
            addr = yield from system.malloc(t0, 256 << 10)
            for off in range(0, 16 * LINE, LINE):
                yield from system.mem_read(t0, addr + off, 8)

        run_threads(system, [body()])
        cache = system.cache_of(t0)
        assert cache.stats.get("prefetch_hits") >= 8

    def test_prefetch_disabled_by_config(self):
        config = SamhitaConfig(prefetch_adjacent=False)
        system = SamhitaSystem.cluster(n_threads=1, config=config)
        t0 = system.add_thread()

        def body():
            addr = yield from system.malloc(t0, 256 << 10)
            yield from system.mem_read(t0, addr, 8)

        run_threads(system, [body()])
        assert system.compute_server_of(t0).stats.get("prefetches_issued") == 0


class TestEviction:
    def _tiny_cache_system(self, policy=None):
        kw = {"cache_capacity_pages": 8, "prefetch_adjacent": False}
        if policy is not None:
            kw["eviction_policy"] = policy
        config = SamhitaConfig(**kw)
        system = SamhitaSystem.cluster(n_threads=1, config=config)
        return system, system.add_thread()

    def test_working_set_larger_than_cache_evicts(self):
        system, t0 = self._tiny_cache_system()

        def body():
            addr = yield from system.malloc(t0, 256 << 10)
            for off in range(0, 64 * PAGE, PAGE):
                yield from system.mem_read(t0, addr + off, 8)

        run_threads(system, [body()])
        assert system.cache_of(t0).stats.get("evictions") > 0
        assert system.cache_of(t0).resident_pages <= 8

    def test_dirty_eviction_writes_back_and_data_survives(self):
        system, t0 = self._tiny_cache_system()
        out = {}

        def body():
            addr = yield from system.malloc(t0, 256 << 10)
            yield from system.mem_write(t0, addr, 8, u8(1234567))
            # Blow the cache with 16 other pages.
            for off in range(PAGE, 17 * PAGE, PAGE):
                yield from system.mem_read(t0, addr + off, 8)
            cache = system.cache_of(t0)
            assert not cache.resident(cache.layout.page_of(addr))
            data = yield from system.mem_read(t0, addr, 8)
            out["v"] = int(data.view(np.int64)[0])

        run_threads(system, [body()])
        assert out["v"] == 1234567
        assert system.cache_of(t0).stats.get("evictions_dirty") >= 1


class TestStripedFetch:
    def test_striped_allocation_served_by_multiple_servers(self):
        config = SamhitaConfig(n_memory_servers=2)
        system = SamhitaSystem.cluster(n_threads=1, config=config)
        t0 = system.add_thread()

        def body():
            addr = yield from system.malloc(t0, 2 << 20)
            for off in range(0, 8 * LINE, LINE):
                yield from system.mem_read(t0, addr + off, 8)

        run_threads(system, [body()])
        served = [s.stats.get("pages_served") for s in system.memory_servers]
        assert all(count > 0 for count in served)


class TestTimingMode:
    def test_timing_mode_tracks_traffic_without_data(self):
        config = SamhitaConfig(functional=False)
        system = SamhitaSystem.cluster(n_threads=1, config=config)
        t0 = system.add_thread()
        out = {}

        def body():
            addr = yield from system.malloc(t0, 128 << 10)
            yield from system.mem_write(t0, addr, 256, None)
            out["read"] = yield from system.mem_read(t0, addr, 256)

        run_threads(system, [body()])
        assert out["read"] is None
        assert system.fabric.stats.get("bytes.page") > 0
