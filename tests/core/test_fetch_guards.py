"""Tests for per-page invalidation guards and the pinned-fetch fallback."""

import numpy as np
import pytest

from repro.core import SamhitaConfig
from repro.kernels import (
    Allocation,
    MicrobenchParams,
    microbench_reference,
    spawn_microbench,
)
from repro.memory import MemoryLayout, SoftwareCache
from repro.runtime import Runtime


class TestInvalEpochs:
    def test_invalidate_bumps_counter_even_without_copy(self):
        # The counter guards in-flight fetches: while a fetch of the page
        # is registered, invalidation advances its epoch even though no
        # copy is resident.
        cache = SoftwareCache(MemoryLayout(), capacity_pages=8)
        token = cache.begin_fetch([5, 6])
        assert cache.inval_epoch_of(5) == 0
        cache.invalidate([5])          # page was never resident
        assert cache.inval_epoch_of(5) == 1
        cache.invalidate([5, 6])
        assert cache.inval_epoch_of(5) == 2
        assert cache.inval_epoch_of(6) == 1
        cache.end_fetch(token)

    def test_unfetched_pages_are_not_tracked(self):
        # No fetch in flight -> no observer for the bump: the directive is
        # absorbed without growing per-page state.
        cache = SoftwareCache(MemoryLayout(), capacity_pages=8)
        cache.invalidate([5])
        assert cache.inval_epoch_of(5) == 0

    def test_counters_independent_per_page(self):
        cache = SoftwareCache(MemoryLayout(), capacity_pages=8)
        token = cache.begin_fetch([1, 2])
        cache.invalidate([1])
        assert cache.inval_epoch_of(2) == 0
        cache.end_fetch(token)


class TestIvyContention:
    def test_heavy_write_contention_completes_and_is_correct(self):
        """16 threads hammering strided shared pages under the eager
        protocol: the per-page guards + pinned-fetch fallback guarantee both
        progress and the right answer."""
        params = MicrobenchParams(N=3, M=2, S=2, B=256,
                                  allocation=Allocation.GLOBAL_STRIDED)
        rt = Runtime("samhita", n_threads=16,
                     config=SamhitaConfig(coherence="ivy"))
        spawn_microbench(rt, params)
        result = rt.run()
        expected = microbench_reference(params, 16)
        assert result.value_of(0) == pytest.approx(expected, rel=1e-9)
        # The contention machinery actually engaged.
        cs = result.stats["compute_servers"]
        assert (cs.get("stale_fetch_dropped", 0) > 0
                or cs.get("pinned_fetches", 0) > 0)

    def test_reader_against_writer_loop_makes_progress(self):
        """A reader polling a page that a writer updates in a tight loop --
        the textbook starvation case for invalidate protocols."""
        rt = Runtime("samhita", n_threads=2,
                     config=SamhitaConfig(coherence="ivy"))
        bar = rt.create_barrier()
        shared = {}

        def writer(ctx):
            shared["addr"] = yield from ctx.malloc_shared(4096)
            yield from ctx.barrier(bar)
            for i in range(1, 40):
                payload = np.frombuffer(np.int64(i).tobytes(), np.uint8)
                yield from ctx.write(shared["addr"], 8, payload)
            yield from ctx.barrier(bar)

        def reader(ctx):
            yield from ctx.barrier(bar)
            seen = []
            for _ in range(10):
                raw = yield from ctx.read(shared["addr"], 8)
                seen.append(int(raw.view(np.int64)[0]))
            yield from ctx.barrier(bar)
            return seen

        rt.spawn(writer)
        rt.spawn(reader)
        result = rt.run()
        seen = result.value_of(1)
        assert len(seen) == 10
        # Monotone non-decreasing reads: no time travel.
        assert seen == sorted(seen)
