"""Tests for the eager write-invalidate (IVY-style) coherence baseline."""

import numpy as np
import pytest

from repro.core import SamhitaConfig, SamhitaSystem
from repro.errors import ReproError
from repro.kernels import (
    Allocation,
    JacobiParams,
    MicrobenchParams,
    jacobi_reference,
    microbench_reference,
    spawn_jacobi,
    spawn_microbench,
)
from repro.runtime import Runtime

IVY = SamhitaConfig(coherence="ivy")


def test_unknown_coherence_rejected():
    with pytest.raises(ReproError):
        SamhitaConfig(coherence="mesi")


class TestIvyCorrectness:
    def test_single_writer_roundtrip(self):
        rt = Runtime("samhita", n_threads=1, config=IVY)

        def body(ctx):
            addr = yield from ctx.malloc(128 << 10)
            yield from ctx.write(addr, 8, np.full(8, 9, np.uint8))
            data = yield from ctx.read(addr, 8)
            return int(data[0])

        rt.spawn(body)
        assert rt.run().value_of(0) == 9

    def test_writes_are_immediately_visible_without_sync(self):
        """The defining IVY property RegC deliberately gives up: a write is
        globally visible as soon as it completes."""
        rt = Runtime("samhita", n_threads=2, config=IVY)
        bar = rt.create_barrier()
        shared = {}

        def writer(ctx):
            shared["addr"] = yield from ctx.malloc_shared(64)
            yield from ctx.write(shared["addr"], 8, np.full(8, 42, np.uint8))
            yield from ctx.barrier(bar)
            yield from ctx.barrier(bar)

        def reader(ctx):
            yield from ctx.barrier(bar)
            # No flush/invalidate happened at this barrier (IVY barriers are
            # pure rendezvous); the read must still see 42 via the home.
            data = yield from ctx.read(shared["addr"], 8)
            yield from ctx.barrier(bar)
            return int(data[0])

        rt.spawn(writer)
        rt.spawn(reader)
        assert rt.run().value_of(1) == 42

    def test_write_invalidates_other_readers_copies(self):
        rt = Runtime("samhita", n_threads=2, config=IVY)
        bar = rt.create_barrier()
        shared = {}

        def writer(ctx):
            shared["addr"] = yield from ctx.malloc_shared(64)
            yield from ctx.write(shared["addr"], 8, np.full(8, 1, np.uint8))
            yield from ctx.barrier(bar)       # reader caches the page now
            yield from ctx.barrier(bar)
            yield from ctx.write(shared["addr"], 8, np.full(8, 2, np.uint8))
            yield from ctx.barrier(bar)

        def reader(ctx):
            yield from ctx.barrier(bar)
            first = yield from ctx.read(shared["addr"], 8)   # cache the page
            yield from ctx.barrier(bar)
            yield from ctx.barrier(bar)
            second = yield from ctx.read(shared["addr"], 8)  # refetch fresh
            return int(first[0]), int(second[0])

        rt.spawn(writer)
        rt.spawn(reader)
        result = rt.run()
        assert result.value_of(1) == (1, 2)
        # The second write really invalidated the reader's copy.
        servers = result.stats["memory_servers"]
        assert servers.get("upgrades", 0) >= 2

    @pytest.mark.parametrize("allocation", list(Allocation))
    def test_microbench_functionally_correct(self, allocation):
        params = MicrobenchParams(N=2, M=2, S=2, B=64, allocation=allocation)
        rt = Runtime("samhita", n_threads=4, config=IVY)
        spawn_microbench(rt, params)
        result = rt.run()
        expected = microbench_reference(params, 4)
        assert result.value_of(0) == pytest.approx(expected, rel=1e-9)

    def test_jacobi_functionally_correct(self):
        params = JacobiParams(rows=12, cols=32, iterations=3,
                              collect_result=True)
        rt = Runtime("samhita", n_threads=2, config=IVY)
        spawn_jacobi(rt, params)
        result = rt.run()
        _, grid = result.value_of(0)
        _, ref = jacobi_reference(params)
        assert np.allclose(grid, ref)


class TestIvyCosts:
    def test_false_sharing_ping_pong_is_catastrophic(self):
        """The historical result: under strided false sharing the eager
        protocol ping-pongs pages on every write, while RegC batches the
        damage into barrier-time diffs."""
        params = MicrobenchParams(N=4, M=2, S=2, B=256,
                                  allocation=Allocation.GLOBAL_STRIDED)

        def compute_time(config):
            rt = Runtime("samhita", n_threads=4, config=config)
            spawn_microbench(rt, params)
            return rt.run().mean_compute_time

        ivy = compute_time(IVY)
        regc = compute_time(SamhitaConfig())
        assert ivy > 3 * regc

    def test_ivy_barriers_do_no_consistency_work(self):
        """IVY pays per write instead of per synchronization: its barriers
        are pure rendezvous (no notices, flushes or invalidations)."""
        params = MicrobenchParams(N=6, M=1, S=2, B=256,
                                  allocation=Allocation.GLOBAL_STRIDED)

        def barrier_bytes(config):
            rt = Runtime("samhita", n_threads=4, config=config)
            spawn_microbench(rt, params)
            fabric = rt.run().stats["fabric"]
            return fabric.get("bytes.barrier_diff", 0)

        assert barrier_bytes(IVY) == 0
        assert barrier_bytes(SamhitaConfig()) > 0

    def test_private_data_steady_state_costs_the_same(self):
        """Once a thread owns its private pages, repeated writes are local
        under both protocols: the eager penalty is sharing-specific."""
        def steady_compute(config):
            rt = Runtime("samhita", n_threads=2, config=config)
            bar = rt.create_barrier()

            def body(ctx):
                addr = yield from ctx.malloc(16 << 10)
                payload = np.full(1024, ctx.tid + 1, np.uint8)
                yield from ctx.write(addr, 1024, payload)  # take ownership
                yield from ctx.barrier(bar)
                ctx.reset_clock()
                for _ in range(50):
                    yield from ctx.write(addr, 1024, payload)
                    yield from ctx.read(addr, 1024)
                return ctx.clock.compute

            rt.spawn_all(body)
            result = rt.run()
            return max(result.value_of(t) for t in result.threads)

        ivy = steady_compute(IVY)
        regc = steady_compute(SamhitaConfig())
        assert ivy == pytest.approx(regc, rel=0.25)
