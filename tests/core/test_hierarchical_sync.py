"""Tests for hierarchical (node-combining) barrier synchronization."""

import numpy as np
import pytest

from repro.core import SamhitaConfig, SamhitaSystem
from repro.kernels import (
    Allocation,
    MicrobenchParams,
    microbench_reference,
    spawn_microbench,
)
from repro.runtime import Runtime

HIER = SamhitaConfig(hierarchical_sync=True)


class TestCorrectness:
    @pytest.mark.parametrize("allocation", list(Allocation))
    def test_microbench_still_correct(self, allocation):
        params = MicrobenchParams(N=3, M=2, S=2, B=64, allocation=allocation)
        rt = Runtime("samhita", n_threads=16, config=HIER)  # 2 compute nodes
        spawn_microbench(rt, params)
        result = rt.run()
        expected = microbench_reference(params, 16)
        assert result.value_of(0) == pytest.approx(expected, rel=1e-9)

    def test_barriers_reusable_across_generations(self):
        rt = Runtime("samhita", n_threads=16, config=HIER)
        bar = rt.create_barrier()
        order = []

        def body(ctx):
            for r in range(4):
                yield from ctx.compute(100 * (ctx.tid + 1))
                yield from ctx.barrier(bar)
                order.append((r, ctx.tid))

        rt.spawn_all(body)
        rt.run()
        # Every round completes for all threads before the next starts.
        rounds = [r for r, _ in order]
        assert rounds == sorted(rounds)

    def test_consistency_work_still_happens(self):
        """Multi-writer merge through the combined path."""
        rt = Runtime("samhita", n_threads=16, config=HIER)
        bar = rt.create_barrier()
        shared = {}

        def body(ctx):
            if ctx.tid == 0:
                shared["addr"] = yield from ctx.malloc_shared(4096)
            yield from ctx.barrier(bar)
            # All 16 threads write disjoint slices of one page.
            off = ctx.tid * 16
            yield from ctx.write(shared["addr"] + off, 16,
                                 np.full(16, ctx.tid + 1, np.uint8))
            yield from ctx.barrier(bar)
            data = yield from ctx.read(shared["addr"], 256)
            return [int(data[i * 16]) for i in range(16)]

        rt.spawn_all(body)
        result = rt.run()
        assert result.value_of(5) == list(range(1, 17))


class TestCostShape:
    def test_fewer_manager_requests_per_barrier(self):
        def requests(hierarchical):
            config = SamhitaConfig(hierarchical_sync=hierarchical)
            rt = Runtime("samhita", n_threads=32, config=config)
            bar = rt.create_barrier()

            def body(ctx):
                for _ in range(5):
                    yield from ctx.barrier(bar)

            rt.spawn_all(body)
            result = rt.run()
            return result.stats["manager"].get("requests", 0)

        flat = requests(False)
        combined = requests(True)
        # 4 compute nodes instead of 32 threads talk to the manager.
        assert combined < flat / 4

    def test_barrier_sync_time_improves_at_scale(self):
        def sync_time(hierarchical):
            config = SamhitaConfig(hierarchical_sync=hierarchical)
            rt = Runtime("samhita", n_threads=32, config=config)
            bar = rt.create_barrier()

            def body(ctx):
                for _ in range(10):
                    yield from ctx.barrier(bar)

            rt.spawn_all(body)
            return rt.run().mean_sync_time

        assert sync_time(True) < sync_time(False)

    def test_partial_party_barrier_falls_back_to_flat(self):
        """Barriers over a subset of threads use the flat protocol (the
        combiner cannot know which local threads participate)."""
        rt = Runtime("samhita", n_threads=4, config=HIER)
        sub_bar = rt.create_barrier(parties=2)
        full_bar = rt.create_barrier()

        def body(ctx):
            if ctx.tid < 2:
                yield from ctx.barrier(sub_bar)
            yield from ctx.barrier(full_bar)
            return "done"

        rt.spawn_all(body)
        result = rt.run()
        assert all(result.value_of(t) == "done" for t in result.threads)
