"""Tests for barrier planning and lock update logs (RegC core logic)."""

import numpy as np
import pytest

from repro.core.consistency import LockUpdateLog, plan_barrier
from repro.memory import PageDiff, PageDirectory


class TestPlanBarrier:
    def test_no_notices_is_empty_plan(self):
        plan = plan_barrier({0: [], 1: []}, PageDirectory())
        assert plan.invalidate == {0: set(), 1: set()}
        assert plan.flush == {0: [], 1: []}
        assert plan.multi_writer_pages == set()

    def test_single_writer_keeps_page_and_gains_ownership(self):
        d = PageDirectory()
        plan = plan_barrier({0: [5], 1: []}, d)
        assert plan.flush == {0: [], 1: []}
        # Writer does not invalidate its own page; the other thread must.
        assert plan.invalidate[0] == set()
        assert plan.invalidate[1] == {5}
        assert d.owner_of(5) == 0

    def test_multi_writer_page_flushes_everywhere(self):
        d = PageDirectory()
        plan = plan_barrier({0: [5], 1: [5]}, d)
        assert plan.flush == {0: [5], 1: [5]}
        assert plan.invalidate[0] == {5}
        assert plan.invalidate[1] == {5}
        assert plan.multi_writer_pages == {5}
        assert d.owner_of(5) is None

    def test_multi_writer_clears_prior_ownership(self):
        d = PageDirectory()
        d.record_owner(5, 0)
        plan_barrier({0: [5], 1: [5]}, d)
        assert d.owner_of(5) is None

    def test_mixed_plan(self):
        d = PageDirectory()
        plan = plan_barrier({0: [1, 2], 1: [2, 3], 2: []}, d)
        assert plan.multi_writer_pages == {2}
        assert plan.flush[0] == [2] and plan.flush[1] == [2] and plan.flush[2] == []
        assert plan.invalidate[0] == {2, 3}
        assert plan.invalidate[1] == {1, 2}
        assert plan.invalidate[2] == {1, 2, 3}
        assert d.owner_of(1) == 0 and d.owner_of(3) == 1

    def test_total_notices_counted(self):
        plan = plan_barrier({0: [1, 2], 1: [2]}, PageDirectory())
        assert plan.total_notices == 3


class TestLockUpdateLog:
    def _diff(self, page, nbytes):
        return PageDiff(page, spans=[(0, np.ones(nbytes, np.uint8))])

    def test_first_acquirer_sees_everything(self):
        log = LockUpdateLog()
        log.append([self._diff(1, 4)])
        log.append([self._diff(2, 6)])
        diffs, payload, spans, inval = log.updates_since(7)
        assert [d.page for d in diffs] == [1, 2]
        assert payload == 10
        assert spans == 2
        assert inval == []

    def test_second_call_sees_nothing_new(self):
        log = LockUpdateLog()
        log.append([self._diff(1, 4)])
        log.updates_since(0)
        diffs, payload, _, _ = log.updates_since(0)
        assert diffs == [] and payload == 0

    def test_interleaved_threads_each_get_their_gap(self):
        log = LockUpdateLog()
        log.append([self._diff(1, 4)])
        log.updates_since(0)          # thread 0 sees v1
        log.append([self._diff(2, 6)])
        d0, p0, _, _ = log.updates_since(0)
        d1, p1, _, _ = log.updates_since(1)
        assert [d.page for d in d0] == [2] and p0 == 6
        assert [d.page for d in d1] == [1, 2] and p1 == 10

    def test_invalidate_pages_accumulate_and_dedup(self):
        log = LockUpdateLog()
        log.append([], invalidate_pages=[3, 4])
        log.append([], invalidate_pages=[4, 5])
        _, _, _, inval = log.updates_since(0)
        assert inval == [3, 4, 5]

    def test_prune_requires_full_population(self):
        log = LockUpdateLog()
        log.append([self._diff(1, 4)])
        log.updates_since(0)
        # Thread 1 exists but never acquired: pruning with the full
        # population must keep the epoch alive for it.
        log.prune([0, 1])
        diffs, _, _, _ = log.updates_since(1)
        assert [d.page for d in diffs] == [1]

    def test_prune_drops_fully_consumed_epochs(self):
        log = LockUpdateLog()
        log.append([self._diff(1, 4)])
        log.updates_since(0)
        log.updates_since(1)
        log.prune([0, 1])
        assert len(log) == 0
