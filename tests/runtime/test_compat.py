"""Tests for the Pthreads compatibility layer: a literally-ported Pthreads
program runs unchanged on both backends."""

import pytest

from repro.runtime import Runtime
from repro.runtime import compat as pt


def ported_worker(ctx, shared, mutex, barrier):
    """A C-to-Python port of the paper's benchmark skeleton, written in the
    Pthreads vocabulary."""
    if pt.pthread_self(ctx) == 0:
        shared["gsum"] = yield from pt.malloc(ctx, 64)
        yield from pt.memset(ctx, shared["gsum"], 0, 8)
    rc = yield from pt.pthread_barrier_wait(ctx, barrier)
    assert rc in (0, pt.PTHREAD_BARRIER_SERIAL_THREAD)

    local_sum = float(pt.pthread_self(ctx) + 1)
    yield from pt.pthread_mutex_lock(ctx, mutex)
    gsum = yield from pt.load_double(ctx, shared["gsum"])
    yield from pt.store_double(ctx, shared["gsum"], gsum + local_sum)
    yield from pt.pthread_mutex_unlock(ctx, mutex)
    yield from pt.pthread_barrier_wait(ctx, barrier)

    return (yield from pt.load_double(ctx, shared["gsum"]))


class TestPortedProgram:
    @pytest.mark.parametrize("backend", ["pthreads", "samhita"])
    def test_same_source_both_backends(self, backend):
        rt = Runtime(backend, n_threads=4)
        mutex, barrier = rt.create_lock(), rt.create_barrier()
        shared = {}
        rt.spawn_all(ported_worker, shared, mutex, barrier)
        result = rt.run()
        for t in result.threads:
            assert result.value_of(t) == pytest.approx(1 + 2 + 3 + 4)

    def test_barrier_serial_thread_is_unique(self):
        rt = Runtime("samhita", n_threads=4)
        barrier = rt.create_barrier()

        def body(ctx):
            rc = yield from pt.pthread_barrier_wait(ctx, barrier)
            return rc

        rt.spawn_all(body)
        result = rt.run()
        serials = [t for t in result.threads
                   if result.value_of(t) == pt.PTHREAD_BARRIER_SERIAL_THREAD]
        assert len(serials) == 1


class TestMemoryHelpers:
    def test_memset_and_memcpy(self):
        rt = Runtime("samhita", n_threads=1)

        def body(ctx):
            a = yield from pt.malloc(ctx, 256)
            b = yield from pt.malloc(ctx, 256)
            yield from pt.memset(ctx, a, 7, 256)
            yield from pt.memcpy(ctx, b, a, 256)
            data = yield from ctx.read(b, 256)
            return int(data.sum())

        rt.spawn(body)
        assert rt.run().value_of(0) == 7 * 256

    def test_int64_roundtrip(self):
        rt = Runtime("pthreads", n_threads=1)

        def body(ctx):
            a = yield from pt.malloc(ctx, 64)
            yield from pt.store_int64(ctx, a, -123456789)
            return (yield from pt.load_int64(ctx, a))

        rt.spawn(body)
        assert rt.run().value_of(0) == -123456789

    def test_free_via_compat(self):
        rt = Runtime("samhita", n_threads=1)

        def body(ctx):
            a = yield from pt.malloc(ctx, 200 << 10)
            yield from pt.free(ctx, a)
            return True

        rt.spawn(body)
        assert rt.run().value_of(0)
