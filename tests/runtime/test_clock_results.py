"""Tests for ThreadClock and RunResult aggregation."""

import pytest

from repro.runtime import RunResult, ThreadClock
from repro.runtime.results import ThreadResult


class TestThreadClock:
    def test_charge_buckets(self):
        clock = ThreadClock()
        clock.charge("compute", 1.0)
        clock.charge("sync", 0.5)
        clock.charge("compute", 0.25)
        assert clock.compute == 1.25
        assert clock.sync == 0.5
        assert clock.total == 1.75

    def test_detail_tracks_buckets_and_extras(self):
        clock = ThreadClock()
        clock.charge("compute", 1.0)
        clock.charge_detail("fault", 0.4)
        assert clock.detail["compute"] == 1.0
        assert clock.detail["fault"] == 0.4

    def test_unknown_bucket_rejected(self):
        with pytest.raises(ValueError):
            ThreadClock().charge("io", 1.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            ThreadClock().charge("compute", -1.0)


def make_result(values):
    """values: list of (compute, sync)."""
    threads = {}
    for tid, (compute, sync) in enumerate(values):
        clock = ThreadClock()
        clock.charge("compute", compute)
        clock.charge("sync", sync)
        threads[tid] = ThreadResult(tid, clock, value=tid * 10)
    return RunResult(backend="test", n_threads=len(values),
                     elapsed=10.0, threads=threads)


class TestRunResult:
    def test_means_and_maxima(self):
        result = make_result([(1.0, 0.1), (3.0, 0.3)])
        assert result.mean_compute_time == pytest.approx(2.0)
        assert result.max_compute_time == pytest.approx(3.0)
        assert result.mean_sync_time == pytest.approx(0.2)
        assert result.max_sync_time == pytest.approx(0.3)

    def test_max_total_time_is_slowest_thread(self):
        result = make_result([(1.0, 1.0), (2.5, 0.1)])
        assert result.max_total_time == pytest.approx(2.6)

    def test_value_of(self):
        result = make_result([(1.0, 0.0), (1.0, 0.0)])
        assert result.value_of(1) == 10

    def test_empty_result_aggregates_to_zero(self):
        result = RunResult(backend="test", n_threads=0, elapsed=0.0)
        assert result.mean_compute_time == 0.0
        assert result.max_total_time == 0.0
