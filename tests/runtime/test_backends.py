"""Tests exercising the public runtime API on BOTH backends.

The paper's key programmability claim is that one threaded code base runs on
Pthreads and on Samhita unchanged; these tests parametrize every kernel over
both backends and assert identical functional results.
"""

import numpy as np
import pytest

from repro.errors import BackendError
from repro.runtime import Runtime, make_backend


def u8(value):
    return np.frombuffer(np.int64(value).tobytes(), np.uint8)


def as_i64(buf):
    return int(np.asarray(buf, np.uint8)[:8].view(np.int64)[0])


BACKENDS = ["pthreads", "samhita"]


@pytest.fixture(params=BACKENDS)
def rt4(request):
    return Runtime(request.param, n_threads=4)


class TestBasics:
    def test_make_backend_rejects_unknown(self):
        with pytest.raises(BackendError):
            make_backend("mpi", 4)

    def test_runtime_requires_thread_count(self):
        with pytest.raises(BackendError):
            Runtime("pthreads")

    def test_pthreads_rejects_more_threads_than_cores(self):
        with pytest.raises(BackendError):
            Runtime("pthreads", n_threads=9)  # Penryn node has 8 cores

    def test_pthreads_oversubscribe_opt_in(self):
        rt = Runtime("pthreads", n_threads=9, allow_oversubscribe=True)
        assert rt.n_threads == 9

    def test_samhita_scales_past_one_node(self):
        rt = Runtime("samhita", n_threads=32)
        assert rt.backend.system.topology.graph.number_of_nodes() > 6

    def test_cannot_spawn_more_than_declared(self, rt4):
        def body(ctx):
            yield from ctx.compute(1)

        rt4.spawn_all(body)
        with pytest.raises(BackendError):
            rt4.spawn(body)

    def test_run_without_spawn_rejected(self, rt4):
        with pytest.raises(BackendError):
            rt4.run()


class TestSameProgramBothBackends:
    def kernel_sum(self, ctx, shared, lock, bar, rounds):
        """The micro-benchmark's synchronization skeleton."""
        if ctx.tid == 0:
            shared["g"] = yield from ctx.malloc(64)
        yield from ctx.barrier(bar)
        for _ in range(rounds):
            yield from ctx.compute(100)
            yield from ctx.lock(lock)
            cur = yield from ctx.read(shared["g"], 8)
            yield from ctx.write(shared["g"], 8, u8(as_i64(cur) + 1))
            yield from ctx.unlock(lock)
            yield from ctx.barrier(bar)
        final = yield from ctx.read(shared["g"], 8)
        return as_i64(final)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_global_sum_identical(self, backend):
        rt = Runtime(backend, n_threads=4)
        lock, bar = rt.create_lock(), rt.create_barrier()
        shared = {}
        rt.spawn_all(self.kernel_sum, shared, lock, bar, 3)
        result = rt.run()
        assert [result.value_of(t) for t in sorted(result.threads)] == [12] * 4

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_neighbour_exchange_identical(self, backend):
        """Each thread writes its slot, barrier, reads its neighbour's."""
        rt = Runtime(backend, n_threads=4)
        bar = rt.create_barrier()
        shared = {}

        def body(ctx):
            if ctx.tid == 0:
                shared["base"] = yield from ctx.malloc(256 << 10)
            yield from ctx.barrier(bar)
            slot = shared["base"] + ctx.tid * 4096
            yield from ctx.write(slot, 8, u8(ctx.tid * 100))
            yield from ctx.barrier(bar)
            neighbour = shared["base"] + ((ctx.tid + 1) % 4) * 4096
            data = yield from ctx.read(neighbour, 8)
            return as_i64(data)

        rt.spawn_all(body)
        result = rt.run()
        values = [result.value_of(t) for t in sorted(result.threads)]
        assert values == [100, 200, 300, 0]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_producer_consumer_condvar(self, backend):
        rt = Runtime(backend, n_threads=2)
        lock, cond, bar = rt.create_lock(), rt.create_cond(), rt.create_barrier()
        shared = {}

        def body(ctx):
            if ctx.tid == 0:
                shared["flag"] = yield from ctx.malloc(64)
                yield from ctx.write(shared["flag"], 8, u8(0))
            yield from ctx.barrier(bar)
            if ctx.tid == 1:  # consumer
                yield from ctx.lock(lock)
                while True:
                    val = as_i64((yield from ctx.read(shared["flag"], 8)))
                    if val == 1:
                        break
                    yield from ctx.cond_wait(cond, lock)
                yield from ctx.unlock(lock)
                return "consumed"
            yield from ctx.compute(10000)  # producer works first
            yield from ctx.lock(lock)
            yield from ctx.write(shared["flag"], 8, u8(1))
            yield from ctx.cond_signal(cond)
            yield from ctx.unlock(lock)
            return "produced"

        rt.spawn_all(body)
        result = rt.run()
        assert result.value_of(1) == "consumed"


class TestClockAccounting:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_compute_and_sync_buckets_populated(self, backend):
        rt = Runtime(backend, n_threads=2)
        bar = rt.create_barrier()

        def body(ctx):
            yield from ctx.compute(10000)
            yield from ctx.barrier(bar)

        rt.spawn_all(body)
        result = rt.run()
        for t in result.threads.values():
            assert t.clock.compute > 0
            assert t.clock.sync >= 0
            assert t.clock.total <= result.elapsed + 1e-12

    def test_samhita_sync_costs_more_than_pthreads(self):
        """Figure 11's headline: DSM synchronization is orders of magnitude
        above hardware synchronization."""
        def sync_time(backend):
            rt = Runtime(backend, n_threads=4)
            bar = rt.create_barrier()

            def body(ctx):
                for _ in range(10):
                    yield from ctx.barrier(bar)

            rt.spawn_all(body)
            return rt.run().mean_sync_time

        assert sync_time("samhita") > 10 * sync_time("pthreads")

    def test_waiting_at_barrier_counts_as_sync(self):
        rt = Runtime("pthreads", n_threads=2)
        bar = rt.create_barrier()

        def fast(ctx):
            yield from ctx.barrier(bar)

        def slow(ctx):
            yield from ctx.compute(10_000_000)
            yield from ctx.barrier(bar)

        rt.spawn(fast)
        rt.spawn(slow)
        result = rt.run()
        assert result.threads[0].clock.sync > result.threads[1].clock.sync


class TestFalseSharingBaseline:
    def test_pthreads_false_sharing_costs_coherence_misses(self):
        """Two threads alternately writing the same 64B line ping-pong it."""
        rt = Runtime("pthreads", n_threads=2)
        bar = rt.create_barrier()
        shared = {}

        def body(ctx):
            if ctx.tid == 0:
                shared["base"] = yield from ctx.malloc(4096)
            yield from ctx.barrier(bar)
            offset = ctx.tid * 8  # same line, different words
            for _ in range(50):
                yield from ctx.write(shared["base"] + offset, 8, u8(1))
                yield from ctx.barrier(bar)

        rt.spawn_all(body)
        result = rt.run()
        assert result.stats["cache"].get("coherence_misses", 0) > 50
