"""Tests for the SharedArray helper on both backends."""

import numpy as np
import pytest

from repro.errors import MemoryError_
from repro.runtime import Runtime, SharedArray

BACKENDS = ["pthreads", "samhita"]


def run_single(backend, body, **rt_kwargs):
    rt = Runtime(backend, n_threads=1, **rt_kwargs)
    rt.spawn(body)
    return rt.run().value_of(0)


class TestSharedArray:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_write_read_roundtrip(self, backend):
        def body(ctx):
            arr = yield from SharedArray.allocate(ctx, rows=8, cols=256)
            values = np.arange(256, dtype=np.float64)
            yield from arr.write_rows(3, values)
            row = yield from arr.read_rows(3)
            return row.copy()

        out = run_single(backend, body)
        assert np.array_equal(out[0], np.arange(256, dtype=np.float64))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_multi_row_block(self, backend):
        def body(ctx):
            arr = yield from SharedArray.allocate(ctx, rows=8, cols=16)
            block = np.arange(48, dtype=np.float64).reshape(3, 16)
            yield from arr.write_rows(2, block)
            back = yield from arr.read_rows(2, 3)
            return back.copy()

        out = run_single(backend, body)
        assert np.array_equal(out, np.arange(48, dtype=np.float64).reshape(3, 16))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fill_and_read_all(self, backend):
        def body(ctx):
            arr = yield from SharedArray.allocate(ctx, rows=4, cols=8)
            yield from arr.fill(2.5)
            whole = yield from arr.read_all()
            return float(whole.sum())

        assert run_single(backend, body) == pytest.approx(4 * 8 * 2.5)

    def test_timing_mode_returns_none(self):
        from repro.core import SamhitaConfig

        def body(ctx):
            arr = yield from SharedArray.allocate(ctx, rows=4, cols=8)
            yield from arr.write_rows(0, None, nrows=4)
            data = yield from arr.read_rows(0, 4)
            return data

        out = run_single("samhita", body, config=SamhitaConfig(functional=False))
        assert out is None

    def test_row_addressing(self):
        def body(ctx):
            arr = yield from SharedArray.allocate(ctx, rows=4, cols=256)
            assert arr.row_bytes == 2048
            assert arr.row_addr(1) == arr.addr + 2048
            with pytest.raises(MemoryError_):
                arr.row_addr(4)
            with pytest.raises(MemoryError_):
                yield from arr.read_rows(3, 2)
            return True

        assert run_single("pthreads", body)

    def test_view_shares_storage_between_threads(self):
        rt = Runtime("pthreads", n_threads=2)
        bar = rt.create_barrier()
        shared = {}

        def body(ctx):
            if ctx.tid == 0:
                shared["arr"] = yield from SharedArray.allocate(ctx, 2, 8)
                yield from shared["arr"].write_rows(
                    0, np.full(8, 7.0, dtype=np.float64))
            yield from ctx.barrier(bar)
            mine = shared["arr"].view(ctx)
            row = yield from mine.read_rows(0)
            return float(row.sum())

        rt.spawn_all(body)
        result = rt.run()
        assert result.value_of(1) == pytest.approx(56.0)

    def test_bad_dimensions_rejected(self):
        def body(ctx):
            with pytest.raises(MemoryError_):
                SharedArray(ctx, 0, rows=0, cols=4)
            yield from ctx.compute(0)
            return True

        rt = Runtime("pthreads", n_threads=1)
        rt.spawn(body)
        assert rt.run().value_of(0)
