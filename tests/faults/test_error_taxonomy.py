"""The retryable-vs-fatal error taxonomy the recovery loops dispatch on.

Recovery code branches on ``err.retryable`` / ``err.recovery`` (via
:func:`repro.errors.recovery_action`), never on isinstance chains --
these tests pin the classification of every error class so a taxonomy
change is a conscious decision, not an accident."""

import pytest

from repro.errors import (
    AllocationError,
    CommunicationError,
    ConsistencyError,
    MemoryError_,
    OverloadShedError,
    ProtectionError,
    ReplicationError,
    ReproError,
    RetryableError,
    RetryExhaustedError,
    RpcTimeoutError,
    SimulationError,
    StaleEpochError,
    TopologyError,
    recovery_action,
)


def _timeout():
    return RpcTimeoutError("node0", "node1", "fetch_req", 25e-6, now=1e-3)


def _exhausted():
    return RetryExhaustedError("node0", "node1", "page", 64, now=1e-3)


def _stale():
    return StaleEpochError("node0", "node1", "diff", 1, 2, now=1e-3)


def _shed():
    return OverloadShedError("node0", "node1", "fetch_req", 2, 2, now=1e-3)


class TestClassification:
    def test_base_is_fatal(self):
        assert ReproError.retryable is False
        assert ReproError.recovery is None

    @pytest.mark.parametrize("make,action", [
        (_timeout, "backoff"),
        (_exhausted, "failover"),
        (_stale, "refresh_epoch"),
        (_shed, "backoff"),
    ])
    def test_retryable_errors_carry_their_action(self, make, action):
        err = make()
        assert err.retryable is True
        assert err.recovery == action
        assert recovery_action(err) == action

    @pytest.mark.parametrize("cls", [
        ReproError, SimulationError, TopologyError, CommunicationError,
        ReplicationError, MemoryError_, AllocationError, ProtectionError,
        ConsistencyError,
    ])
    def test_fatal_errors_have_no_action(self, cls):
        err = cls("boom")
        assert err.retryable is False
        assert recovery_action(err) is None

    def test_non_repro_exceptions_are_fatal(self):
        # Programming errors must never be swallowed by a recovery loop.
        assert recovery_action(TypeError("bug")) is None
        assert recovery_action(ValueError("bug")) is None

    def test_retryable_mixin_defaults_to_backoff(self):
        class Transient(RetryableError, CommunicationError):
            pass

        err = Transient("hiccup")
        assert err.retryable is True
        assert recovery_action(err) == "backoff"


class TestShedError:
    def test_carries_queue_depth_and_limit(self):
        err = _shed()
        assert err.depth == 2 and err.limit == 2
        assert "shed" in str(err)
        assert "node0" in str(err) and "node1" in str(err)

    def test_is_a_communication_error(self):
        # The recovery loops catch CommunicationError; a shed NACK must
        # land in the same net (then classify as backoff).
        assert isinstance(_shed(), CommunicationError)
