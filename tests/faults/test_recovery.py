"""Recovery protocol tests: retry exhaustion, leases, watchdog, deadlock
diagnostics, and route validation."""

import pytest

from repro.core import SamhitaConfig, SamhitaSystem
from repro.errors import (
    CommunicationError,
    DeadlockError,
    ReproError,
    RetryExhaustedError,
    RpcTimeoutError,
    SimulationError,
    TopologyError,
)
from repro.faults import FaultPlan, RetryPolicy
from repro.sim.engine import Engine, Timeout


def run_threads(system, bodies, names=None):
    for i, body in enumerate(bodies):
        system.process(body, name=(names[i] if names else f"t{i}"))
    return system.run()


class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(CommunicationError, ReproError)
        assert issubclass(RpcTimeoutError, CommunicationError)
        assert issubclass(RetryExhaustedError, CommunicationError)

    def test_rpc_timeout_message_carries_route_and_time(self):
        err = RpcTimeoutError("node2", "node0", "lock", 25e-6, now=1.5e-3)
        assert "node2" in str(err) and "node0" in str(err)
        assert "lock" in str(err) and "t=" in str(err)

    def test_deadlock_error_carries_time_and_reasons(self):
        class FakeProc:
            def __init__(self, name):
                self.name = name

        procs = [FakeProc("worker0"), FakeProc("worker1")]
        err = DeadlockError(procs, now=2.5e-3,
                            reasons={"worker0": "lock3.wait",
                                     "worker1": "barrier.gen1.arrive"})
        msg = str(err)
        assert "t=" in msg
        assert "lock3.wait" in msg and "barrier.gen1.arrive" in msg
        assert err.now == 2.5e-3
        assert err.reasons["worker0"] == "lock3.wait"


class TestRetryExhaustion:
    def test_total_loss_exhausts_the_retry_budget(self):
        """With 100% loss the sender retries its full budget, then gives
        up; the engine surfaces the failure with the cause chained."""
        plan = FaultPlan(seed=3, drop_rate=1.0,
                         retry=RetryPolicy(timeout=1e-6, max_backoff=2e-6,
                                           max_retries=4))
        system = SamhitaSystem.cluster(
            n_threads=1, config=SamhitaConfig(faults=plan))
        tid = system.add_thread()

        def body():
            yield from system.malloc(tid, 1 << 21)  # striped: needs RPCs

        with pytest.raises(SimulationError) as excinfo:
            run_threads(system, [body()])
        cause = excinfo.value.__cause__
        assert isinstance(cause, RetryExhaustedError)
        assert cause.attempts == 4
        assert system.injector.stats.counters["retransmits"] == 4

    def test_exhaustion_error_carries_the_attempt_timeline(self):
        """Every attempt -- the original send plus each retry -- leaves an
        entry in the error's timeline: when it fired, which fault process
        ate it, and the timeout/backoff in force. That per-attempt record
        is what makes a retry-budget post-mortem possible."""
        plan = FaultPlan(seed=3, drop_rate=1.0,
                         retry=RetryPolicy(timeout=1e-6, max_backoff=2e-6,
                                           max_retries=4))
        system = SamhitaSystem.cluster(
            n_threads=1, config=SamhitaConfig(faults=plan))
        tid = system.add_thread()

        def body():
            yield from system.malloc(tid, 1 << 21)

        with pytest.raises(SimulationError) as excinfo:
            run_threads(system, [body()])
        cause = excinfo.value.__cause__
        timeline = cause.timeline
        assert len(timeline) == 5  # original attempt + 4 retries
        for i, entry in enumerate(timeline):
            assert entry["attempt"] == i + 1
            assert set(entry) == {"attempt", "t", "fault", "timeout",
                                  "backoff"}
            assert entry["fault"] == "drops_injected"
            assert entry["timeout"] == 1e-6
        # Simulated time advances monotonically across attempts, and only
        # the final (give-up) entry has no backoff scheduled after it.
        times = [entry["t"] for entry in timeline]
        assert times == sorted(times)
        assert all(e["backoff"] is not None for e in timeline[:-1])
        assert timeline[-1]["backoff"] is None
        # The message summarizes the timeline for humans.
        assert "5x drops_injected" in str(cause)

    def test_partial_loss_is_survivable(self):
        plan = FaultPlan(seed=3, drop_rate=0.3,
                         retry=RetryPolicy(timeout=1e-6, max_backoff=4e-6))
        system = SamhitaSystem.cluster(
            n_threads=1, config=SamhitaConfig(faults=plan))
        tid = system.add_thread()
        out = {}

        def body():
            out["addr"] = yield from system.malloc(tid, 1 << 21)

        run_threads(system, [body()])
        assert out["addr"] is not None
        assert system.injector.stats.counters["retransmits"] > 0


class TestLockLeases:
    def _system(self, **cfg):
        config = SamhitaConfig(lock_lease_time=50e-6, **cfg)
        system = SamhitaSystem.cluster(n_threads=2, config=config)
        return system, [system.add_thread(), system.add_thread()]

    def test_dead_holder_lease_expires_and_regrants(self):
        system, (t0, t1) = self._system()
        lock = system.create_lock()
        order = []

        def crasher():
            yield from system.acquire_lock(t0, lock)
            order.append("t0 acquired")
            system.mark_thread_dead(t0)
            # Crash: returns without ever releasing.

        def waiter():
            yield Timeout(10e-6)  # arrive second, while t0 holds the lock
            yield from system.acquire_lock(t1, lock)
            order.append("t1 acquired")
            yield from system.release_lock(t1, lock)

        elapsed = run_threads(system, [crasher(), waiter()])
        assert order == ["t0 acquired", "t1 acquired"]
        assert system.manager.stats.counters["lease_expiries"] == 1
        # The re-grant happens at the lease deadline, never earlier.
        assert elapsed >= 50e-6

    def test_live_holder_never_loses_its_lease(self):
        """A wedged-but-live holder is a true deadlock, not a lease case:
        the recoverer must decline and the enriched DeadlockError fire."""
        system, (t0, t1) = self._system()
        lock = system.create_lock()

        def holder():
            yield from system.acquire_lock(t0, lock)
            # Alive (not marked dead), just never releases.

        def waiter():
            yield Timeout(10e-6)
            yield from system.acquire_lock(t1, lock)

        with pytest.raises(DeadlockError) as excinfo:
            run_threads(system, [holder(), waiter()], names=["h", "w"])
        assert "w" in excinfo.value.reasons
        assert "lock" in excinfo.value.reasons["w"]

    def test_leases_disabled_means_deadlock(self):
        config = SamhitaConfig()  # lock_lease_time=0.0
        system = SamhitaSystem.cluster(n_threads=2, config=config)
        t0, t1 = system.add_thread(), system.add_thread()
        lock = system.create_lock()

        def crasher():
            yield from system.acquire_lock(t0, lock)
            system.mark_thread_dead(t0)

        def waiter():
            yield Timeout(10e-6)
            yield from system.acquire_lock(t1, lock)

        with pytest.raises(DeadlockError):
            run_threads(system, [crasher(), waiter()])


class TestEngineDeadlockHooks:
    def test_hook_can_recover_a_stall(self):
        engine = Engine()
        gate = engine.event("stalled.op")
        recovered = []

        def hook(blocked):
            recovered.append([p.name for p in blocked])
            engine.schedule(1e-6, gate.succeed)
            return True

        engine.deadlock_hooks.append(hook)

        def body():
            yield gate
            return "done"

        proc = engine.process(body(), name="stuck")
        engine.run()
        assert recovered == [["stuck"]]
        assert not proc.alive

    def test_all_hooks_declining_raises_enriched_deadlock(self):
        engine = Engine()
        engine.deadlock_hooks.append(lambda blocked: False)
        gate = engine.event("never.fires")

        def body():
            yield Timeout(5e-6)
            yield gate

        engine.process(body(), name="stuck")
        with pytest.raises(DeadlockError) as excinfo:
            engine.run()
        assert excinfo.value.now == 5e-6
        assert excinfo.value.reasons == {"stuck": "never.fires"}


class TestRouteValidation:
    def test_route_names_the_offending_component(self):
        system = SamhitaSystem.cluster(n_threads=1)
        with pytest.raises(TopologyError, match="'nosuch'"):
            system.topology.route("nosuch", "node0")
        with pytest.raises(TopologyError, match="'ghost'"):
            system.topology.route("node0", "ghost")

    def test_fabric_transfer_surfaces_the_bad_endpoint(self):
        system = SamhitaSystem.cluster(n_threads=1)

        def body():
            yield from system.fabric.transfer("node0", "ghost", 64)

        with pytest.raises(SimulationError) as excinfo:
            run_threads(system, [body()])
        cause = excinfo.value.__cause__
        assert isinstance(cause, TopologyError)
        assert "'ghost'" in str(cause)
