"""Unit tests for the fault plan / injector layer."""

import pytest

from repro.errors import ReproError
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.faults.recovery import RpcDedup


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ReproError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ReproError):
            FaultPlan(corrupt_rate=-0.1)

    def test_windows_validated(self):
        with pytest.raises(ReproError):
            FaultPlan(server_crash_windows=(("node1", 2.0, 1.0),))
        with pytest.raises(ReproError):
            FaultPlan(link_flaps=(("a", "b", 0.0),))

    def test_retry_policy_validated(self):
        with pytest.raises(ReproError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ReproError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ReproError):
            RetryPolicy(max_backoff=1e-6, timeout=1e-3)

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(timeout=10e-6, backoff=2.0, max_backoff=35e-6)
        assert policy.delay(1) == 10e-6
        assert policy.delay(2) == 20e-6
        assert policy.delay(3) == 35e-6   # capped, not 40e-6
        assert policy.delay(10) == 35e-6


class TestInjectorDeterminism:
    MESSAGES = [("node2", "node1", "fetch_req", i * 1e-5) for i in range(400)]

    def _verdicts(self, plan):
        inj = FaultInjector(plan)
        return [inj.decide(*msg) for msg in self.MESSAGES]

    def test_same_seed_same_verdicts(self):
        plan = FaultPlan(seed=7, drop_rate=0.05, corrupt_rate=0.02,
                         latency_spike_rate=0.03, duplicate_rate=0.02)
        assert self._verdicts(plan) == self._verdicts(plan)

    def test_different_seed_different_verdicts(self):
        a = FaultPlan(seed=1, drop_rate=0.2)
        b = FaultPlan(seed=2, drop_rate=0.2)
        assert self._verdicts(a) != self._verdicts(b)

    def test_silent_plan_never_draws(self):
        """An all-zero plan must not consume RNG state: its verdict stream
        is None regardless of message count, so the armed-but-silent
        trajectory matches the injector-absent build."""
        inj = FaultInjector(FaultPlan(seed=7))
        state_before = inj._rng.getstate()
        for msg in self.MESSAGES:
            assert inj.decide(*msg) is None
        assert inj._rng.getstate() == state_before

    def test_crash_window_drops_only_inbound_during_window(self):
        plan = FaultPlan(seed=0,
                         server_crash_windows=(("node1", 1e-3, 2e-3),))
        inj = FaultInjector(plan)
        assert inj.decide("node2", "node1", "fetch_req", 1.5e-3) == \
            ("drop", "crash_drops")
        # Outside the window, and messages *from* the crashed server's
        # peers to someone else, flow normally.
        assert inj.decide("node2", "node1", "fetch_req", 2.5e-3) is None
        assert inj.decide("node2", "node0", "lock", 1.5e-3) is None

    def test_link_flap_is_bidirectional(self):
        plan = FaultPlan(seed=0, link_flaps=(("a", "b", 0.0, 1.0),))
        inj = FaultInjector(plan)
        assert inj.decide("a", "b", "data", 0.5) == ("drop", "flap_drops")
        assert inj.decide("b", "a", "data", 0.5) == ("drop", "flap_drops")
        assert inj.decide("a", "c", "data", 0.5) is None
        assert inj.decide("a", "b", "data", 1.5) is None


class TestRpcDedup:
    def test_fresh_sequences_admitted_duplicates_dropped(self):
        dedup = RpcDedup("node0", ("lock", "barrier"))
        s0 = dedup.next_seq("node2")
        s1 = dedup.next_seq("node2")
        assert dedup.admit("node2", s0)
        assert dedup.admit("node2", s1)
        assert not dedup.admit("node2", s0)       # replay of old request
        assert not dedup.admit("node2", s1)
        assert dedup.dup_rpcs_dropped == 2

    def test_peers_have_independent_streams(self):
        dedup = RpcDedup("node0", ("lock",))
        a = dedup.next_seq("node2")
        b = dedup.next_seq("node3")
        assert a == b == 0
        assert dedup.admit("node2", a)
        assert dedup.admit("node3", b)
        assert dedup.dup_rpcs_dropped == 0


class TestOnDuplicate:
    def test_routed_to_matching_endpoint(self):
        inj = FaultInjector(FaultPlan(seed=0, duplicate_rate=0.5))
        dedup = RpcDedup("node0", ("lock",))
        inj.register_endpoint("node0", dedup)
        inj.on_duplicate("node2", "node0", "lock")
        assert dedup.dup_rpcs_dropped == 1
        assert inj.stats.counters["dup_rpcs_dropped"] == 1

    def test_unmatched_category_discarded_at_transport(self):
        inj = FaultInjector(FaultPlan(seed=0, duplicate_rate=0.5))
        dedup = RpcDedup("node0", ("lock",))
        inj.register_endpoint("node0", dedup)
        inj.on_duplicate("node2", "node0", "page")
        assert dedup.dup_rpcs_dropped == 0
        assert inj.stats.counters["dup_msgs_discarded"] == 1
