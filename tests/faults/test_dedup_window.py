"""Idempotent-delivery window under duplicate storms, and the recovery
counters that must surface in ``stats_report``.

:class:`RpcDedup` is the exactly-once layer over at-least-once transfers:
its per-peer high-water mark has to hold up when retransmits replay whole
prefixes of the sequence stream, interleaved across peers. The report
tests pin the operator-facing side -- duplicate drops and lock-lease
re-grants must be visible in the run's stats, not just in private state.
"""

from repro.core import SamhitaConfig, SamhitaSystem
from repro.faults import FaultPlan, RpcDedup
from repro.sim.engine import Timeout


def run_threads(system, bodies, names=None):
    for i, body in enumerate(bodies):
        system.process(body, name=(names[i] if names else f"t{i}"))
    return system.run()


class TestDedupWindow:
    def test_prefix_replay_storm_drops_every_duplicate(self):
        """Replaying the full delivered prefix after every fresh message --
        the worst retransmit storm -- re-executes nothing."""
        dedup = RpcDedup("node0", categories=("lock",))
        delivered = 0
        for _ in range(8):
            seq = dedup.next_seq("node2")
            assert dedup.admit("node2", seq)
            delivered += 1
            for old in range(seq + 1):
                assert not dedup.admit("node2", old)
        assert dedup.stats.counters["rpcs_delivered"] == delivered
        assert dedup.dup_rpcs_dropped == sum(range(1, 9))

    def test_windows_are_per_peer(self):
        """A storm from one peer must not advance (or poison) another
        peer's window."""
        dedup = RpcDedup("node0", categories=("lock",))
        for _ in range(5):
            dedup.admit("node2", dedup.next_seq("node2"))
        # node3 starts its own stream at 0 despite node2 being at 4.
        assert dedup.admit("node3", dedup.next_seq("node3"))
        assert not dedup.admit("node3", 0)
        assert not dedup.admit("node2", 4)
        assert dedup.admit("node2", dedup.next_seq("node2"))

    def test_interleaved_storm_accounting_is_exact(self):
        dedup = RpcDedup("node0", categories=("alloc",))
        peers = ("node2", "node3", "node4")
        for round_ in range(6):
            for peer in peers:
                seq = dedup.next_seq(peer)
                assert dedup.admit(peer, seq)
                if round_ % 2:  # every other round the reply is "lost"
                    assert not dedup.admit(peer, seq)
        assert dedup.stats.counters["rpcs_delivered"] == 18
        assert dedup.dup_rpcs_dropped == 9

    def test_duplicate_never_counts_as_delivered(self):
        dedup = RpcDedup("node0", categories=("lock",))
        seq = dedup.next_seq("node2")
        dedup.admit("node2", seq)
        before = dedup.stats.counters["rpcs_delivered"]
        for _ in range(10):
            dedup.admit("node2", seq)
        assert dedup.stats.counters["rpcs_delivered"] == before
        assert dedup.dup_rpcs_dropped == 10


class TestDuplicateStormEndToEnd:
    def test_storm_counters_surface_in_the_run_report(self):
        """A high duplicate rate on a chatty lock workload: the answer is
        still exact and the report shows the storm was absorbed."""
        plan = FaultPlan(seed=5, duplicate_rate=0.5)
        config = SamhitaConfig(faults=plan)
        system = SamhitaSystem.cluster(n_threads=2, config=config)
        tids = [system.add_thread(), system.add_thread()]
        lock = system.create_lock()
        bar = system.create_barrier(2)
        counts = {"acquired": 0}

        def body(tid):
            yield from system.barrier_wait(tid, bar)
            for _ in range(10):
                yield from system.acquire_lock(tid, lock)
                counts["acquired"] += 1
                yield from system.release_lock(tid, lock)
            yield from system.barrier_wait(tid, bar)

        run_threads(system, [body(t) for t in tids])
        assert counts["acquired"] == 20
        faults = system.stats_report()["faults"]
        # Each injected duplicate shows up as a retransmit, and its replay
        # is dropped by an RPC endpoint (never re-executing the handler) or
        # discarded by a data receiver.
        assert faults["retransmits"] > 0
        assert faults["dup_rpcs_dropped"] > 0
        assert faults["rpcs_delivered"] > 0


class TestLeaseCountersInReport:
    def test_regrant_counters_surface_in_the_run_report(self):
        """A dead holder's lease expiry must leave an audit trail in
        ``stats_report()["manager"]``: the death mark and the expiry."""
        config = SamhitaConfig(lock_lease_time=50e-6)
        system = SamhitaSystem.cluster(n_threads=2, config=config)
        t0, t1 = system.add_thread(), system.add_thread()
        lock = system.create_lock()

        def crasher():
            yield from system.acquire_lock(t0, lock)
            system.mark_thread_dead(t0)

        def waiter():
            yield Timeout(10e-6)
            yield from system.acquire_lock(t1, lock)
            yield from system.release_lock(t1, lock)

        run_threads(system, [crasher(), waiter()])
        manager = system.stats_report()["manager"]
        assert manager["threads_marked_dead"] == 1
        assert manager["lease_expiries"] == 1

    def test_clean_run_reports_zero_regrants(self):
        system = SamhitaSystem.cluster(
            n_threads=1, config=SamhitaConfig(lock_lease_time=50e-6))
        t0 = system.add_thread()
        lock = system.create_lock()

        def body():
            yield from system.acquire_lock(t0, lock)
            yield from system.release_lock(t0, lock)

        run_threads(system, [body()])
        manager = system.stats_report()["manager"]
        assert manager.get("lease_expiries", 0) == 0
        assert manager.get("threads_marked_dead", 0) == 0
