"""Unit tests for the gray-failure primitives: the per-destination RTT
estimator, the retry-budget token bucket, the circuit-breaker state
machine, and the bulk-trip retransmit-timer floor (a clean max-size bulk
fetch must never look like a lost message)."""

import hashlib

import pytest

from repro.core.params import SamhitaConfig
from repro.core.rtbatch import trip_timeout_floor
from repro.core.system import SamhitaSystem
from repro.experiments.harness import run_workload_direct
from repro.faults import FaultPlan
from repro.faults.recovery import CircuitBreaker, RetryBudget, RttEstimator
from repro.kernels.jacobi import JacobiParams, spawn_jacobi


class TestRttEstimator:
    def test_first_sample_seeds_srtt_and_rttvar(self):
        est = RttEstimator()
        est.observe("node1", 100e-6)
        assert est.rto("node1", floor=0.0) == pytest.approx(
            100e-6 + 4 * 50e-6)

    def test_jacobson_gains(self):
        est = RttEstimator()
        est.observe("node1", 100e-6)
        est.observe("node1", 180e-6)
        # srtt' = srtt + err/8; rttvar' = rttvar + (|err| - rttvar)/4
        srtt = 100e-6 + 80e-6 / 8
        rttvar = 50e-6 + (80e-6 - 50e-6) / 4
        assert est.rto("node1", 0.0) == pytest.approx(srtt + 4 * rttvar)

    def test_rto_never_undercuts_the_floor(self):
        est = RttEstimator()
        est.observe("node1", 1e-6)
        assert est.rto("node1", floor=5e-4) == 5e-4
        assert est.rto("unknown", floor=5e-4) == 5e-4

    def test_window_slides(self):
        est = RttEstimator(window=4)
        for i in range(10):
            est.observe("node1", float(i))
        assert est.samples("node1") == 4
        # Window holds [6, 7, 8, 9]: the max quantile is the newest.
        assert est.quantile("node1", 1.0) == 9.0
        assert est.quantile("node1", 0.0) == 6.0

    def test_quantile_of_empty_window_is_none(self):
        assert RttEstimator().quantile("node1", 0.9) is None

    def test_destinations_are_independent(self):
        est = RttEstimator()
        est.observe("node1", 100e-6)
        est.observe("node2", 900e-6)
        assert est.quantile("node1", 0.5) == 100e-6
        assert est.quantile("node2", 0.5) == 900e-6


class TestRetryBudget:
    def test_spend_to_dry(self):
        budget = RetryBudget(capacity=2, refill=0.5)
        assert budget.spend() and budget.spend()
        assert not budget.spend()

    def test_credit_is_fractional_and_capped(self):
        budget = RetryBudget(capacity=2, refill=0.5)
        budget.spend()
        budget.credit()
        assert budget.tokens == pytest.approx(1.5)
        for _ in range(10):
            budget.credit()
        assert budget.tokens == 2.0


class TestCircuitBreaker:
    def make(self):
        return CircuitBreaker("node1", capacity=2, refill=0.5,
                              cooldown=100e-6)

    def test_opens_when_the_budget_runs_dry(self):
        breaker = self.make()
        assert breaker.failure(now=0.0)      # token 1
        assert breaker.failure(now=1e-6)     # token 2
        assert not breaker.failure(now=2e-6)  # dry: opens
        assert breaker.state == "open"
        assert breaker.opens == 1
        assert not breaker.allow(now=3e-6)

    def test_half_open_probe_after_cooldown(self):
        breaker = self.make()
        for t in (0.0, 1e-6, 2e-6):
            breaker.failure(t)
        assert breaker.allow(now=2e-6 + 100e-6)
        assert breaker.state == "half_open"
        breaker.success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        breaker = self.make()
        for t in (0.0, 1e-6, 2e-6):
            breaker.failure(t)
        breaker.allow(now=2e-6 + 100e-6)
        assert not breaker.failure(now=2e-6 + 101e-6)
        assert breaker.state == "open"
        assert breaker.opens == 2

    def test_reopening_while_open_counts_once(self):
        breaker = self.make()
        for t in (0.0, 1e-6, 2e-6, 3e-6):
            breaker.failure(t)
        assert breaker.opens == 1


class TestTripTimeoutFloor:
    def test_floor_grows_linearly_in_pages(self):
        system = SamhitaSystem.cluster(
            n_threads=1, config=SamhitaConfig(faults=FaultPlan(seed=0)))
        f1 = trip_timeout_floor(system, "node2", "node1", 1)
        f4 = trip_timeout_floor(system, "node2", "node1", 4)
        f16 = trip_timeout_floor(system, "node2", "node1", 16)
        assert f1 > 0
        # alpha + beta*k: equal per-page increments.
        assert f16 - f4 == pytest.approx((f4 - f1) * 4)

    def test_floor_covers_the_modeled_service_time(self):
        system = SamhitaSystem.cluster(
            n_threads=1, config=SamhitaConfig(faults=FaultPlan(seed=0)))
        assert (trip_timeout_floor(system, "node2", "node1", 1)
                > system.config.memserver_service_time)


class TestNoSpuriousRetransmits:
    """The regression the floor exists for: a clean (silent-plan) run
    whose bulk fetches carry the largest groups the workload produces
    must never time out -- with the injector armed, every retransmit
    would be spurious by construction."""

    @pytest.mark.parametrize("config", [
        SamhitaConfig(faults=FaultPlan(seed=0)),
        SamhitaConfig.grayfail(faults=FaultPlan(seed=0)),
        SamhitaConfig.grayfail(faults=FaultPlan(seed=0),
                               adaptive_timeouts=False),
    ], ids=["default", "grayfail", "grayfail-static-timeouts"])
    def test_clean_bulk_fetches_never_retransmit(self, config):
        params = JacobiParams(rows=64, cols=256, iterations=3,
                              collect_result=True)
        result = run_workload_direct("samhita", 4, spawn_jacobi, params,
                                     functional=True, config=config)
        faults = result.stats.get("faults", {})
        assert faults.get("timeouts", 0) == 0
        assert faults.get("retransmits", 0) == 0
        assert faults.get("retries", 0) == 0

    def test_silent_plan_matches_injector_absent(self):
        params = JacobiParams(rows=64, cols=256, iterations=3,
                              collect_result=True)

        def digest(config):
            result = run_workload_direct("samhita", 4, spawn_jacobi,
                                         params, functional=True,
                                         config=config)
            _gdiff, grid = result.threads[0].value
            return hashlib.sha256(grid.tobytes()).hexdigest(), result.elapsed

        assert digest(None) == digest(SamhitaConfig(faults=FaultPlan(seed=0)))
