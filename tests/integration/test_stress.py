"""Stress / scale integration tests with the functional data plane."""

import numpy as np
import pytest

from repro.core import SamhitaConfig, SamhitaSystem
from repro.kernels import (
    Allocation,
    MicrobenchParams,
    microbench_reference,
    spawn_microbench,
)
from repro.runtime import Runtime, SamhitaBackend, SharedArray


class TestFullScale:
    def test_32_threads_functional_correctness(self):
        """The paper's maximum configuration, with real data."""
        params = MicrobenchParams(N=2, M=1, S=1, B=64,
                                  allocation=Allocation.GLOBAL_STRIDED)
        rt = Runtime("samhita", n_threads=32)
        spawn_microbench(rt, params)
        result = rt.run()
        expected = microbench_reference(params, 32)
        assert result.value_of(0) == pytest.approx(expected, rel=1e-9)
        assert result.n_threads == 32

    def test_hetero_machine_functional_correctness(self):
        """Figure 1's machine runs the same program correctly."""
        system = SamhitaSystem.hetero(n_coprocessors=2)
        rt = Runtime(SamhitaBackend(8, system=system))
        params = MicrobenchParams(N=2, M=2, S=2, B=64,
                                  allocation=Allocation.GLOBAL)
        spawn_microbench(rt, params)
        result = rt.run()
        expected = microbench_reference(params, 8)
        assert result.value_of(0) == pytest.approx(expected, rel=1e-9)


class TestEvictionUnderSharing:
    def test_correctness_survives_cache_thrash(self):
        """A cache far smaller than the shared working set forces constant
        eviction write-backs interleaved with barrier merges; every thread
        must still see every byte correctly."""
        config = SamhitaConfig(cache_capacity_pages=8, prefetch_adjacent=False)
        rt = Runtime("samhita", n_threads=4, config=config)
        bar = rt.create_barrier()
        shared = {}
        rows, cols = 24, 512  # 96 KiB: 3x the cache per thread

        def body(ctx):
            if ctx.tid == 0:
                shared["arr"] = yield from SharedArray.allocate(ctx, rows, cols)
            yield from ctx.barrier(bar)
            arr = shared["arr"].view(ctx)
            for row in range(ctx.tid, rows, ctx.nthreads):
                values = np.full(cols, float(row + 1), np.float64)
                yield from arr.write_rows(row, values)
            yield from ctx.barrier(bar)
            total = 0.0
            for row in range(rows):
                data = yield from arr.read_rows(row)
                total += float(data.sum())
            return total

        rt.spawn_all(body)
        result = rt.run()
        expected = sum(cols * (r + 1) for r in range(rows))
        for tid in sorted(result.threads):
            assert result.value_of(tid) == pytest.approx(expected)
        assert result.stats["caches"].get("evictions", 0) > 0

    def test_dirty_eviction_respects_ownership(self):
        """Evicting an owned page clears ownership; later readers get fresh
        data from the home, not a recall to a cleaned cache."""
        config = SamhitaConfig(cache_capacity_pages=8, prefetch_adjacent=False)
        rt = Runtime("samhita", n_threads=2, config=config)
        bar = rt.create_barrier()
        shared = {}

        def writer(ctx):
            shared["arr"] = yield from SharedArray.allocate(ctx, 16, 512)
            arr = shared["arr"]
            yield from arr.write_rows(0, np.full(512, 7.0))
            yield from ctx.barrier(bar)  # row 0's pages now owned by tid 0
            # Thrash own cache so the owned page is evicted (write-back).
            for row in range(1, 16):
                yield from arr.write_rows(row, np.full(512, float(row)))
            yield from ctx.barrier(bar)
            yield from ctx.barrier(bar)

        def reader(ctx):
            yield from ctx.barrier(bar)
            yield from ctx.barrier(bar)
            data = yield from shared["arr"].view(ctx).read_rows(0)
            yield from ctx.barrier(bar)
            return float(data[0, 0])

        rt.spawn(writer)
        rt.spawn(reader)
        result = rt.run()
        assert result.value_of(1) == 7.0


class TestManyLocks:
    def test_independent_locks_do_not_serialize(self):
        """Threads using distinct locks proceed without mutual blocking;
        lock state at the manager is per-lock."""
        rt = Runtime("samhita", n_threads=4)
        locks = [rt.create_lock() for _ in range(4)]
        shared = {}
        bar = rt.create_barrier()

        def body(ctx):
            if ctx.tid == 0:
                shared["base"] = yield from ctx.malloc_shared(4 * 4096)
            yield from ctx.barrier(bar)
            slot = shared["base"] + ctx.tid * 4096
            for i in range(10):
                yield from ctx.lock(locks[ctx.tid])
                payload = np.frombuffer(np.int64(i).tobytes(), np.uint8)
                yield from ctx.write(slot, 8, payload)
                yield from ctx.unlock(locks[ctx.tid])
            yield from ctx.barrier(bar)
            data = yield from ctx.read(slot, 8)
            return int(np.asarray(data).view(np.int64)[0])

        rt.spawn_all(body)
        result = rt.run()
        assert all(result.value_of(t) == 9 for t in result.threads)
        # No lock ever had a waiter: acquisitions equal grants without queue.
        assert result.stats["manager"].get("lock_acquires") == 40
