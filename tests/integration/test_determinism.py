"""Determinism: identical runs produce bit-identical outcomes."""

import pytest

from repro.kernels import (
    Allocation,
    JacobiParams,
    MicrobenchParams,
    spawn_jacobi,
    spawn_microbench,
)
from repro.runtime import Runtime


def run_microbench(backend):
    rt = Runtime(backend, n_threads=4)
    params = MicrobenchParams(N=3, M=2, S=2, B=128,
                              allocation=Allocation.GLOBAL_STRIDED)
    spawn_microbench(rt, params)
    result = rt.run()
    timings = {t: (r.clock.compute, r.clock.sync)
               for t, r in result.threads.items()}
    return result.elapsed, timings, result.value_of(0)


@pytest.mark.parametrize("backend", ["pthreads", "samhita"])
def test_microbench_runs_are_identical(backend):
    first = run_microbench(backend)
    second = run_microbench(backend)
    assert first == second


def test_jacobi_timing_runs_are_identical():
    def run():
        from repro.core import SamhitaConfig
        rt = Runtime("samhita", n_threads=4,
                     config=SamhitaConfig(functional=False))
        spawn_jacobi(rt, JacobiParams(rows=32, cols=256, iterations=3))
        result = rt.run()
        return (result.elapsed,
                tuple(sorted((t, r.clock.total)
                             for t, r in result.threads.items())),
                tuple(sorted(result.stats["fabric"].items())))

    assert run() == run()


def test_functional_and_timing_mode_have_identical_event_structure():
    """Timing mode must preserve the protocol: same message counts and the
    same elapsed virtual time as functional mode (values differ only in the
    diff *bytes*, and this workload overwrites every byte with new values,
    so even those coincide)."""
    from repro.core import SamhitaConfig

    def run(functional):
        rt = Runtime("samhita", n_threads=4,
                     config=SamhitaConfig(functional=functional))
        params = MicrobenchParams(N=3, M=2, S=2, B=128,
                                  allocation=Allocation.GLOBAL_STRIDED)
        spawn_microbench(rt, params)
        result = rt.run()
        fabric = result.stats["fabric"]
        counts = {k: v for k, v in fabric.items() if k.startswith("messages")}
        return result.elapsed, counts

    f_elapsed, f_counts = run(True)
    t_elapsed, t_counts = run(False)
    # Value-based diffing may skip flushing bytes that happen to be
    # unchanged, and the kernel's gsum init write exists only in
    # functional mode, seeding ownership timing mode never sees -- both
    # shift recall counts by a message or two. Under the batched protocol
    # a recalled page's next miss is a fresh round trip, so the fetch/page
    # categories may drift by the same couple of messages; the sync
    # categories must still match exactly.
    for key in ("messages.barrier", "messages.lock", "messages.fine_grain"):
        assert f_counts.get(key, 0) == t_counts.get(key, 0), key
    for key in ("messages.page", "messages.fetch_req"):
        assert abs(f_counts.get(key, 0) - t_counts.get(key, 0)) <= 2, key
    assert abs(f_counts["messages"] - t_counts["messages"]) <= 8
    # Elapsed differs only through diff payloads (value diffs are tighter
    # than dirty ranges), so the two modes stay within ~15%.
    assert f_elapsed == pytest.approx(t_elapsed, rel=0.15)
