"""Randomized RegC visibility oracle.

Generates random multi-threaded programs (disjoint 8-byte writes into
*shared* pages -- maximum false sharing without data races -- separated by
barriers) and checks every read against an oracle of the model's guarantees:

* a thread sees its own epoch writes immediately;
* everyone sees all committed (pre-barrier) writes after the barrier;
* nothing else changes a byte.

Runs the same programs under RegC and under the IVY baseline (whose oracle
is stricter: IVY writes are visible immediately, but since the generated
reads only target bytes written by the reader or committed at a barrier,
the same expectations hold).
"""

import random

import numpy as np
import pytest

from repro.core import SamhitaConfig
from repro.runtime import Runtime

PAGE = 4096
N_PAGES = 4
WORDS_PER_PAGE = PAGE // 8


def build_program(seed: int, n_threads: int, epochs: int, ops_per_epoch: int):
    """Pre-generate each thread's (write, read) plan, plus the oracle."""
    rng = random.Random(seed)
    # Word w belongs to thread (w % n_threads): disjoint writes, shared pages.
    plans = {t: [] for t in range(n_threads)}
    committed: dict[int, int] = {}
    next_value = 1

    for _epoch in range(epochs):
        pending: dict[int, int] = {}
        epoch_plan = {t: {"writes": [], "reads": []} for t in range(n_threads)}
        for t in range(n_threads):
            for _ in range(ops_per_epoch):
                word = rng.randrange(0, N_PAGES * WORDS_PER_PAGE)
                my_word = word - (word % n_threads) + t
                if my_word >= N_PAGES * WORDS_PER_PAGE:
                    my_word -= n_threads
                value = next_value
                next_value += 1
                epoch_plan[t]["writes"].append((my_word, value))
                pending[(t, my_word)] = value
        # Reads happen after this epoch's writes, before the barrier. To be
        # valid under BOTH RegC (others' pending writes invisible) and IVY
        # (immediately visible), a thread reads only its own pending words
        # or committed words nobody is currently rewriting.
        pending_words = {w for (_tt, w) in pending}
        for t in range(n_threads):
            my_pending = [w for (tt, w) in pending if tt == t]
            safe_committed = [w for w in committed
                              if w not in pending_words or (t, w) in pending]
            for _ in range(ops_per_epoch):
                if my_pending and (rng.random() < 0.5 or not safe_committed):
                    word = rng.choice(my_pending)
                elif safe_committed:
                    word = rng.choice(safe_committed)
                else:
                    word = t  # untouched word reads as zero
                expect = pending.get((t, word), committed.get(word, 0))
                epoch_plan[t]["reads"].append((word, expect))
        for t in range(n_threads):
            plans[t].append(epoch_plan[t])
        for (t, word), value in pending.items():
            committed[word] = value
    return plans


def thread_body(ctx, shared, bar, plan):
    if ctx.tid == 0:
        shared["base"] = yield from ctx.malloc_shared(N_PAGES * PAGE)
    yield from ctx.barrier(bar)
    base = shared["base"]
    failures = []
    for epoch in plan:
        for word, value in epoch["writes"]:
            payload = np.frombuffer(np.int64(value).tobytes(), np.uint8)
            yield from ctx.write(base + word * 8, 8, payload)
        for word, expect in epoch["reads"]:
            raw = yield from ctx.read(base + word * 8, 8)
            got = int(np.asarray(raw).view(np.int64)[0])
            if got != expect:
                failures.append((epoch, word, expect, got))
        yield from ctx.barrier(bar)
    return failures


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
@pytest.mark.parametrize("coherence", ["regc", "ivy"])
def test_random_programs_respect_the_memory_model(seed, coherence):
    n_threads, epochs, ops = 4, 4, 8
    plans = build_program(seed, n_threads, epochs, ops)
    rt = Runtime("samhita", n_threads=n_threads,
                 config=SamhitaConfig(coherence=coherence))
    bar = rt.create_barrier()
    shared = {}
    for t in range(n_threads):
        rt.spawn(thread_body, shared, bar, plans[t])
    result = rt.run()
    for t in range(n_threads):
        assert result.value_of(t) == [], f"visibility violations: {result.value_of(t)}"


@pytest.mark.parametrize("seed", [11, 12])
def test_random_programs_on_pthreads_baseline(seed):
    """The hardware-coherent baseline satisfies the same oracle."""
    n_threads, epochs, ops = 4, 3, 8
    plans = build_program(seed, n_threads, epochs, ops)
    rt = Runtime("pthreads", n_threads=n_threads)
    bar = rt.create_barrier()
    shared = {}
    for t in range(n_threads):
        rt.spawn(thread_body, shared, bar, plans[t])
    result = rt.run()
    for t in range(n_threads):
        assert result.value_of(t) == []
