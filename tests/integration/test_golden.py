"""Golden-number regression tests.

The simulator is deterministic, so these workloads' virtual makespans are
exact constants. Any change to a protocol path, cost constant or scheduling
decision moves specific numbers here -- making unintended performance
regressions (or accidental protocol changes) impossible to miss.

If a change is *intentional*, regenerate with:

    python -m pytest tests/integration/test_golden.py --collect-only  # names
    python - <<'PY'
    ... (see the regen() helper at the bottom)
    PY
"""

import pytest

from repro.core import SamhitaConfig
from repro.kernels import (
    Allocation,
    JacobiParams,
    MDParams,
    MicrobenchParams,
    spawn_jacobi,
    spawn_md,
    spawn_microbench,
)
from repro.runtime import Runtime

GOLDEN = {
    "microbench-strided-smh-4": 0.0003067625500000003,
    "microbench-local-pth-4": 1.0563199999999992e-05,
    "jacobi-smh-4": 0.0007109730499999996,
    "md-smh-8": 0.0006645963499999995,
    "ivy-strided-smh-4": 0.001185940999999996,
}

CASES = {
    "microbench-strided-smh-4": dict(
        backend="samhita", spawn_fn=spawn_microbench, n_threads=4,
        params=MicrobenchParams(N=3, M=2, S=2, B=128,
                                allocation=Allocation.GLOBAL_STRIDED)),
    "microbench-local-pth-4": dict(
        backend="pthreads", spawn_fn=spawn_microbench, n_threads=4,
        params=MicrobenchParams(N=3, M=2, S=2, B=128,
                                allocation=Allocation.LOCAL)),
    "jacobi-smh-4": dict(
        backend="samhita", spawn_fn=spawn_jacobi, n_threads=4,
        params=JacobiParams(rows=32, cols=256, iterations=3),
        config=SamhitaConfig(functional=False)),
    "md-smh-8": dict(
        backend="samhita", spawn_fn=spawn_md, n_threads=8,
        params=MDParams(n_particles=64, steps=3, collect_energy=False),
        config=SamhitaConfig(functional=False)),
    "ivy-strided-smh-4": dict(
        backend="samhita", spawn_fn=spawn_microbench, n_threads=4,
        params=MicrobenchParams(N=3, M=2, S=2, B=128,
                                allocation=Allocation.GLOBAL_STRIDED),
        config=SamhitaConfig(coherence="ivy")),
}


def run_case(name: str) -> float:
    case = dict(CASES[name])
    spawn_fn = case.pop("spawn_fn")
    params = case.pop("params")
    backend = case.pop("backend")
    n_threads = case.pop("n_threads")
    rt = Runtime(backend, n_threads=n_threads, **case)
    spawn_fn(rt, params)
    return rt.run().elapsed


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_virtual_makespan_is_bit_stable(name):
    assert run_case(name) == pytest.approx(GOLDEN[name], rel=1e-12), (
        f"{name} drifted from its golden value -- if the change is "
        f"intentional, regenerate GOLDEN (see module docstring)")


def regen():  # pragma: no cover - manual tool
    for name in sorted(CASES):
        print(f'    "{name}": {run_case(name)!r},')


if __name__ == "__main__":  # pragma: no cover
    regen()
