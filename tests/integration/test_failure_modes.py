"""Failure injection: misuse must fail loudly, never hang or corrupt."""

import pytest

from repro.errors import (
    AllocationError,
    DeadlockError,
    SimulationError,
    SynchronizationError,
)
from repro.runtime import Runtime

BACKENDS = ["pthreads", "samhita"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_missing_barrier_party_deadlocks_loudly(backend):
    rt = Runtime(backend, n_threads=2)
    bar = rt.create_barrier(parties=3)  # one party will never come

    def body(ctx):
        yield from ctx.barrier(bar)

    rt.spawn_all(body)
    with pytest.raises(DeadlockError):
        rt.run()


@pytest.mark.parametrize("backend", BACKENDS)
def test_unlock_without_lock_raises(backend):
    rt = Runtime(backend, n_threads=1)
    lock = rt.create_lock()

    def body(ctx):
        with pytest.raises((SynchronizationError, Exception)):
            yield from ctx.unlock(lock)
        return "caught"

    rt.spawn(body)
    assert rt.run().value_of(0) == "caught"


def test_samhita_unlock_by_non_holder_raises():
    rt = Runtime("samhita", n_threads=2)
    lock = rt.create_lock()
    bar = rt.create_barrier()

    def holder(ctx):
        yield from ctx.lock(lock)
        yield from ctx.barrier(bar)
        yield from ctx.barrier(bar)
        yield from ctx.unlock(lock)

    def intruder(ctx):
        yield from ctx.barrier(bar)
        # The region tracker (store instrumentation) catches this first:
        # the intruder never entered a consistency region.
        from repro.errors import ConsistencyError
        with pytest.raises((SynchronizationError, ConsistencyError)):
            yield from ctx.unlock(lock)
        yield from ctx.barrier(bar)
        return "caught"

    rt.spawn(holder)
    rt.spawn(intruder)
    assert rt.run().value_of(1) == "caught"


@pytest.mark.parametrize("backend", BACKENDS)
def test_cond_wait_without_lock_raises(backend):
    rt = Runtime(backend, n_threads=1)
    lock, cond = rt.create_lock(), rt.create_cond()

    def body(ctx):
        with pytest.raises(SynchronizationError):
            yield from ctx.cond_wait(cond, lock)
        return "caught"

    rt.spawn(body)
    assert rt.run().value_of(0) == "caught"


@pytest.mark.parametrize("backend", BACKENDS)
def test_double_free_raises(backend):
    rt = Runtime(backend, n_threads=1)

    def body(ctx):
        addr = yield from ctx.malloc(256 << 10)
        yield from ctx.free(addr)
        with pytest.raises(AllocationError):
            yield from ctx.free(addr)
        return "caught"

    rt.spawn(body)
    assert rt.run().value_of(0) == "caught"


@pytest.mark.parametrize("backend", BACKENDS)
def test_zero_byte_malloc_raises(backend):
    rt = Runtime(backend, n_threads=1)

    def body(ctx):
        with pytest.raises(AllocationError):
            yield from ctx.malloc(0)
        return "caught"

    rt.spawn(body)
    assert rt.run().value_of(0) == "caught"


def test_thread_exception_aborts_run_with_context():
    rt = Runtime("samhita", n_threads=1)

    def body(ctx):
        yield from ctx.compute(10)
        raise RuntimeError("application bug")

    rt.spawn(body)
    with pytest.raises(SimulationError, match="thread0"):
        rt.run()


def test_lost_lock_holder_deadlocks_waiters():
    """A thread that exits while holding a lock leaves waiters stuck --
    and the engine reports exactly who."""
    rt = Runtime("samhita", n_threads=2)
    lock = rt.create_lock()

    def holder(ctx):
        yield from ctx.lock(lock)
        # exits without unlocking

    def waiter(ctx):
        yield from ctx.compute(10_000)
        yield from ctx.lock(lock)

    rt.spawn(holder)
    rt.spawn(waiter)
    with pytest.raises(DeadlockError) as exc:
        rt.run()
    assert "thread1" in str(exc.value)
