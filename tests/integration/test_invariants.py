"""Run every workload and check the global protocol invariants afterwards."""

import pytest

from repro.core import SamhitaConfig
from repro.core.invariants import InvariantViolation, check_invariants
from repro.kernels import (
    Allocation,
    JacobiParams,
    MDParams,
    MicrobenchParams,
    PipelineParams,
    SORParams,
    TaskFarmParams,
    spawn_jacobi,
    spawn_md,
    spawn_microbench,
    spawn_pipeline,
    spawn_sor,
    spawn_taskfarm,
)
from repro.runtime import Runtime

WORKLOADS = {
    "microbench-strided": (spawn_microbench, MicrobenchParams(
        N=3, M=2, S=2, B=128, allocation=Allocation.GLOBAL_STRIDED)),
    "jacobi": (spawn_jacobi, JacobiParams(rows=16, cols=64, iterations=3)),
    "md": (spawn_md, MDParams(n_particles=24, steps=3)),
    "sor": (spawn_sor, SORParams(rows=14, cols=32, iterations=3)),
    "pipeline": (spawn_pipeline, PipelineParams(items=16, capacity=4)),
    "taskfarm": (spawn_taskfarm, TaskFarmParams(n_tasks=16, base_cost=500,
                                                skew=2000)),
}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_regc_invariants_hold_after_every_workload(name):
    spawn_fn, params = WORKLOADS[name]
    rt = Runtime("samhita", n_threads=4)
    spawn_fn(rt, params)
    rt.run()
    assert check_invariants(rt.backend.system, quiescent=True) > 0


@pytest.mark.parametrize("name", ["microbench-strided", "jacobi"])
def test_ivy_invariants_hold(name):
    spawn_fn, params = WORKLOADS[name]
    rt = Runtime("samhita", n_threads=4,
                 config=SamhitaConfig(coherence="ivy"))
    spawn_fn(rt, params)
    rt.run()
    assert check_invariants(rt.backend.system, quiescent=True) > 0


def test_invariants_hold_under_cache_pressure():
    config = SamhitaConfig(cache_capacity_pages=8, prefetch_adjacent=False)
    rt = Runtime("samhita", n_threads=2, config=config)
    spawn_fn, params = WORKLOADS["microbench-strided"]
    spawn_fn(rt, params)
    rt.run()
    assert check_invariants(rt.backend.system, quiescent=True) > 0


def test_checker_catches_planted_violations():
    rt = Runtime("samhita", n_threads=2)
    spawn_fn, params = WORKLOADS["jacobi"]
    spawn_fn(rt, params)
    rt.run()
    system = rt.backend.system
    # Plant a bogus ownership record: owner without dirty data.
    some_clean_page = next(
        p for p, e in system.cache_of(0).entries.items() if not e.is_dirty)
    system.directory.record_owner(some_clean_page, 0)
    with pytest.raises(InvariantViolation):
        check_invariants(system, quiescent=True)
    system.directory.clear_owner(some_clean_page)

    # Plant a twin on a clean entry.
    import numpy as np
    entry = system.cache_of(0).entries[some_clean_page]
    entry.twin = np.zeros(4096, np.uint8)
    with pytest.raises(InvariantViolation):
        check_invariants(system, quiescent=True)
