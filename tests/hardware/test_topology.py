"""Tests for topology builders and routing."""

import pytest

from repro.errors import TopologyError
from repro.hardware import (
    Component,
    ComponentKind,
    Topology,
    cluster_topology,
    hetero_node_topology,
    smp_topology,
)
from repro.interconnect import ib_qdr, scif_link, verbs_proxy_link


class TestTopologyCore:
    def test_duplicate_component_rejected(self):
        topo = Topology()
        topo.add(Component("a", ComponentKind.SWITCH))
        with pytest.raises(TopologyError):
            topo.add(Component("a", ComponentKind.SWITCH))

    def test_connect_unknown_component_rejected(self):
        topo = Topology()
        topo.add(Component("a", ComponentKind.SWITCH))
        with pytest.raises(TopologyError):
            topo.connect("a", "ghost", ib_qdr())

    def test_route_to_self_is_empty(self):
        topo = smp_topology()
        assert topo.route("host", "host") == []

    def test_route_unknown_endpoint_rejected(self):
        topo = smp_topology()
        with pytest.raises(TopologyError):
            topo.route("host", "ghost")

    def test_no_path_rejected(self):
        topo = Topology()
        topo.add(Component("a", ComponentKind.SWITCH))
        topo.add(Component("b", ComponentKind.SWITCH))
        with pytest.raises(TopologyError):
            topo.route("a", "b")

    def test_component_lookup(self):
        topo = smp_topology()
        assert topo.component("host").kind is ComponentKind.HOST
        with pytest.raises(TopologyError):
            topo.component("nope")


class TestSMP:
    def test_single_component_with_cores(self):
        topo = smp_topology()
        assert list(topo.components) == ["host"]
        assert topo.component("host").cores == 8
        assert topo.compute_components() == [topo.component("host")]


class TestCluster:
    def test_six_node_paper_testbed(self):
        topo = cluster_topology(6)
        nodes = [c for c in topo.components.values()
                 if c.kind is ComponentKind.CLUSTER_NODE]
        assert len(nodes) == 6
        assert all(n.cores == 8 for n in nodes)

    def test_route_crosses_pcie_ib_switch_ib_pcie(self):
        topo = cluster_topology(4)
        links = topo.route("node0", "node3")
        names = [l.name for l in links]
        # pcie, half-IB, half-IB, pcie
        assert len(links) == 4
        assert names[0].startswith("pcie")
        assert "ib" in names[1] and "ib" in names[2]
        assert names[3].startswith("pcie")

    def test_end_to_end_latency_matches_published_qdr(self):
        topo = cluster_topology(2)
        links = topo.route("node0", "node1")
        latency = sum(l.latency for l in links)
        # Full IB latency plus two PCIe hops.
        assert latency == pytest.approx(1.3e-6 + 2 * 0.3e-6)

    def test_route_is_symmetric(self):
        topo = cluster_topology(3)
        fwd = topo.route("node0", "node2")
        back = topo.route("node2", "node0")
        assert [l.name for l in back] == [l.name for l in reversed(fwd)]

    def test_too_small_cluster_rejected(self):
        with pytest.raises(TopologyError):
            cluster_topology(1)

    def test_compute_components_excludes_switches(self):
        topo = cluster_topology(3)
        names = [c.name for c in topo.compute_components()]
        assert names == ["node0", "node1", "node2"]


class TestHeteroNode:
    def test_figure1_shape(self):
        topo = hetero_node_topology(n_coprocessors=2)
        assert topo.component("host").kind is ComponentKind.HOST
        assert topo.component("mic0").kind is ComponentKind.COPROCESSOR
        assert len(topo.route("host", "mic1")) == 1

    def test_scif_path_faster_than_verbs_proxy(self):
        scif = hetero_node_topology(bus=scif_link())
        proxy = hetero_node_topology(bus=verbs_proxy_link())
        page = 4096
        t_scif = sum(l.transfer_time(page) for l in scif.route("host", "mic0"))
        t_proxy = sum(l.transfer_time(page) for l in proxy.route("host", "mic0"))
        assert t_scif < t_proxy

    def test_zero_coprocessors_rejected(self):
        with pytest.raises(TopologyError):
            hetero_node_topology(n_coprocessors=0)

    def test_coprocessor_has_many_cores(self):
        topo = hetero_node_topology()
        assert topo.component("mic0").cores >= 32
