"""Tests for link models, the fabric, and SCL."""

import pytest

from repro.hardware import cluster_topology, hetero_node_topology
from repro.interconnect import (
    Fabric,
    LinkModel,
    SCL,
    gigabit_ethernet,
    ib_ddr,
    ib_fdr,
    ib_qdr,
    ib_sdr,
    pcie_gen2_x16,
)
from repro.interconnect.scl import CONTROL_BYTES
from repro.sim import Engine, Timeout


class TestLinkModel:
    def test_transfer_time_is_latency_plus_serialization(self):
        link = LinkModel("l", latency=1e-6, bandwidth=1e9)
        assert link.transfer_time(1000) == pytest.approx(1e-6 + 1000 / 1e9)

    def test_zero_bytes_costs_latency_only(self):
        link = LinkModel("l", latency=1e-6, bandwidth=1e9)
        assert link.transfer_time(0) == pytest.approx(1e-6)

    def test_mtu_segmentation_overhead(self):
        link = LinkModel("l", latency=0.0, bandwidth=1e9,
                         per_packet_overhead=1e-6, mtu=1000)
        # 2500 bytes => 3 packets
        assert link.transfer_time(2500) == pytest.approx(2500 / 1e9 + 3e-6)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LinkModel("bad", latency=-1.0, bandwidth=1e9)
        with pytest.raises(ValueError):
            LinkModel("bad", latency=0.0, bandwidth=0.0)

    def test_with_returns_modified_copy(self):
        link = ib_qdr()
        slower = link.with_(bandwidth=1e9)
        assert slower.bandwidth == 1e9
        assert link.bandwidth != 1e9

    def test_generation_ordering(self):
        # Later IB generations are strictly better for a page transfer.
        page = 4096
        times = [l().transfer_time(page) for l in (ib_sdr, ib_ddr, ib_qdr, ib_fdr)]
        assert times == sorted(times, reverse=True)

    def test_ethernet_is_much_slower_than_ib(self):
        page = 4096
        assert gigabit_ethernet().transfer_time(page) > 10 * ib_qdr().transfer_time(page)


class TestFabric:
    def _run(self, gen):
        eng = self.eng
        proc = eng.process(gen, name="xfer")
        eng.run()
        return eng.now

    def test_path_time_uses_bottleneck_serialization(self):
        eng = Engine()
        topo = cluster_topology(2)
        fabric = Fabric(eng, topo)
        nbytes = 1 << 20
        t = fabric.path_time("node0", "node1", nbytes)
        links = topo.route("node0", "node1")
        latency = sum(l.latency for l in links)
        bottleneck = max(l.serialize_time(nbytes) for l in links)
        assert t == pytest.approx(latency + bottleneck)

    def test_transfer_advances_clock_by_path_time(self):
        self.eng = eng = Engine()
        fabric = Fabric(eng, cluster_topology(2), model_contention=False)
        expected = fabric.path_time("node0", "node1", 4096)
        elapsed = self._run(fabric.transfer("node0", "node1", 4096))
        assert elapsed == pytest.approx(expected)

    def test_local_transfer_is_free(self):
        self.eng = eng = Engine()
        fabric = Fabric(eng, cluster_topology(2))
        elapsed = self._run(fabric.transfer("node0", "node0", 1 << 20))
        assert elapsed == 0.0

    def test_stats_account_messages_and_bytes(self):
        self.eng = eng = Engine()
        fabric = Fabric(eng, cluster_topology(2))
        self._run(fabric.transfer("node0", "node1", 4096, category="page"))
        assert fabric.stats.get("messages") == 1
        assert fabric.stats.get("bytes.page") == 4096

    def test_contended_bus_serializes_concurrent_transfers(self):
        eng = Engine()
        topo = hetero_node_topology()  # PCIe bus is contended
        fabric = Fabric(eng, topo, model_contention=True)
        nbytes = 6 << 20  # ~1s/6 GB/s = 1 ms serialization each

        def client():
            yield from fabric.transfer("mic0", "host", nbytes)

        for _ in range(4):
            eng.process(client(), name="c")
        eng.run()
        serialize = topo.route("mic0", "host")[0].serialize_time(nbytes)
        # Four transfers cannot overlap their serialization.
        assert eng.now >= 4 * serialize

    def test_uncontended_mode_overlaps_transfers(self):
        eng = Engine()
        topo = hetero_node_topology()
        fabric = Fabric(eng, topo, model_contention=False)
        nbytes = 6 << 20

        def client():
            yield from fabric.transfer("mic0", "host", nbytes)

        for _ in range(4):
            eng.process(client(), name="c")
        eng.run()
        assert eng.now == pytest.approx(fabric.path_time("mic0", "host", nbytes))

    def test_link_utilization_reported(self):
        eng = Engine()
        fabric = Fabric(eng, hetero_node_topology(), model_contention=True)

        def client():
            yield from fabric.transfer("mic0", "host", 1 << 20)

        eng.process(client())
        eng.run()
        util = fabric.link_utilization()
        assert len(util) == 1
        assert next(iter(util.values())) > 0


class TestSCL:
    def _elapsed(self, op):
        # send/rdma_put may complete inline (returning None with the clock
        # already advanced) or return a generator for the remaining legs.
        eng = self.eng
        if op is not None:
            eng.process(op, name="scl-op")
            eng.run()
        return eng.now

    def test_rdma_get_is_request_plus_data(self):
        self.eng = eng = Engine()
        fabric = Fabric(eng, cluster_topology(2), model_contention=False)
        scl = SCL(fabric)
        elapsed = self._elapsed(scl.rdma_get("node0", "node1", 4096))
        expected = (fabric.path_time("node0", "node1", CONTROL_BYTES)
                    + fabric.path_time("node1", "node0", 4096))
        assert elapsed == pytest.approx(expected)
        assert scl.stats.get("rdma_get") == 1

    def test_rdma_put_is_one_way(self):
        self.eng = eng = Engine()
        fabric = Fabric(eng, cluster_topology(2), model_contention=False)
        scl = SCL(fabric)
        elapsed = self._elapsed(scl.rdma_put("node0", "node1", 4096))
        assert elapsed == pytest.approx(fabric.path_time("node0", "node1", 4096))

    def test_request_response_round_trip(self):
        self.eng = eng = Engine()
        fabric = Fabric(eng, cluster_topology(2), model_contention=False)
        scl = SCL(fabric)
        elapsed = self._elapsed(scl.request_response("node0", "node1"))
        one_way = fabric.path_time("node0", "node1", CONTROL_BYTES)
        assert elapsed == pytest.approx(2 * one_way)

    def test_get_bigger_payload_costs_more(self):
        eng1, eng2 = Engine(), Engine()
        f1 = Fabric(eng1, cluster_topology(2), model_contention=False)
        f2 = Fabric(eng2, cluster_topology(2), model_contention=False)
        s1, s2 = SCL(f1), SCL(f2)
        eng1.process(s1.rdma_get("node0", "node1", 4096))
        eng2.process(s2.rdma_get("node0", "node1", 64 * 4096))
        eng1.run(), eng2.run()
        assert eng2.now > eng1.now
