"""Tests for the optional NUMA (cross-socket) refinement of the baseline."""

import pytest

from repro.hardware import CoherentCacheModel
from repro.hardware.specs import CacheSpec

NUMA = CacheSpec(line_bytes=64, cold_miss_time=60e-9,
                 coherence_miss_time=80e-9, cross_socket_factor=2.0)


def test_same_socket_coherence_miss_costs_base(
        ):
    c = CoherentCacheModel(NUMA, cores_per_socket=4)
    c.access(0, 0, 8, True)
    cost = c.access(1, 0, 8, False)  # cores 0,1 share socket 0
    assert cost == pytest.approx(NUMA.coherence_miss_time)
    assert c.stats.get("cross_socket_misses") == 0


def test_cross_socket_coherence_miss_pays_factor():
    c = CoherentCacheModel(NUMA, cores_per_socket=4)
    c.access(0, 0, 8, True)
    cost = c.access(4, 0, 8, False)  # core 4 is on socket 1
    assert cost == pytest.approx(2.0 * NUMA.coherence_miss_time)
    assert c.stats.get("cross_socket_misses") == 1


def test_factor_one_disables_numa():
    spec = CacheSpec(cross_socket_factor=1.0)
    c = CoherentCacheModel(spec, cores_per_socket=4)
    c.access(0, 0, 8, True)
    cost = c.access(4, 0, 8, False)
    assert cost == pytest.approx(spec.coherence_miss_time)
    assert c.stats.get("cross_socket_misses") == 0


def test_no_socket_info_disables_numa():
    c = CoherentCacheModel(NUMA, cores_per_socket=None)
    c.access(0, 0, 8, True)
    cost = c.access(4, 0, 8, False)
    assert cost == pytest.approx(NUMA.coherence_miss_time)


def test_block_access_mixes_local_and_remote():
    c = CoherentCacheModel(NUMA, cores_per_socket=4)
    # Socket-0 core dirties line 0; socket-1 core dirties line 1.
    c.access(0, 0, 8, True)
    c.access(4, 64, 8, True)
    # Core 1 (socket 0) reads both lines in one block access.
    cost = c.access(1, 0, 128, False)
    expected = NUMA.coherence_miss_time + 2.0 * NUMA.coherence_miss_time
    assert cost == pytest.approx(expected)


def test_numa_node_in_pthreads_backend():
    from dataclasses import replace
    from repro.hardware.specs import PENRYN_NODE
    from repro.runtime import PthreadsBackend

    numa_node = replace(PENRYN_NODE, cache=NUMA)
    backend = PthreadsBackend(8, node=numa_node)
    assert backend.cache.cores_per_socket == 4
