"""Tests for the machine catalog and the compute cost model."""

import pytest

from repro.hardware import (
    ComputeCostModel,
    PENRYN_CPU,
    PENRYN_NODE,
    XEON_PHI_KNC,
    generic_cpu,
    generic_node,
)


class TestSpecs:
    def test_penryn_node_matches_paper_testbed(self):
        # "dual quad-core 2.8GHz Intel Xeon ... with 8GB of main memory"
        assert PENRYN_NODE.cores == 8
        assert PENRYN_NODE.cpu.clock_hz == pytest.approx(2.8e9)
        assert PENRYN_NODE.dram_bytes == 8 << 30

    def test_knc_is_manycore_with_small_memory(self):
        assert XEON_PHI_KNC.cores >= 32
        assert XEON_PHI_KNC.dram_bytes <= 16 << 30
        # Per-core scalar speed is well below the host core's.
        assert XEON_PHI_KNC.cpu.element_op_time > PENRYN_CPU.element_op_time

    def test_flop_time_derived_from_clock(self):
        assert PENRYN_CPU.flop_time == pytest.approx(1.0 / (2.8e9 * 2.0))

    def test_generic_builders(self):
        node = generic_node(cores=16, clock_ghz=3.0)
        assert node.cores == 16
        assert node.cpu.clock_hz == pytest.approx(3.0e9)
        with pytest.raises(ValueError):
            generic_node(cores=0)

    def test_specs_are_frozen(self):
        with pytest.raises(Exception):
            PENRYN_CPU.clock_hz = 1.0  # type: ignore[misc]


class TestComputeCostModel:
    def test_element_time_scales_linearly(self):
        model = ComputeCostModel(PENRYN_CPU)
        one = model.element_time(1)
        assert model.element_time(1000) == pytest.approx(1000 * one)

    def test_element_time_scales_with_flops_per_element(self):
        model = ComputeCostModel(PENRYN_CPU)
        assert model.element_time(10, flops_per_element=4.0) == pytest.approx(
            2.0 * model.element_time(10, flops_per_element=2.0))

    def test_zero_work_is_free(self):
        model = ComputeCostModel(PENRYN_CPU)
        assert model.element_time(0) == 0.0
        assert model.flop_time(0) == 0.0
        assert model.scalar_overhead(0) == 0.0

    def test_negative_work_rejected(self):
        model = ComputeCostModel(PENRYN_CPU)
        with pytest.raises(ValueError):
            model.element_time(-1)
        with pytest.raises(ValueError):
            model.flop_time(-1)
        with pytest.raises(ValueError):
            model.scalar_overhead(-1)

    def test_slower_core_costs_more(self):
        fast = ComputeCostModel(generic_cpu(element_op_ns=1.0))
        slow = ComputeCostModel(generic_cpu(element_op_ns=4.0))
        assert slow.element_time(100) == pytest.approx(4 * fast.element_time(100))
