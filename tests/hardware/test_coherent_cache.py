"""Tests for the hardware-coherent cache model (Pthreads baseline)."""

import pytest

from repro.hardware import CoherentCacheModel
from repro.hardware.specs import CacheSpec

SPEC = CacheSpec(line_bytes=64, cold_miss_time=60e-9, coherence_miss_time=80e-9)


def make():
    return CoherentCacheModel(SPEC)


class TestBasics:
    def test_first_touch_is_cold_miss(self):
        c = make()
        cost = c.access(core=0, addr=0, nbytes=8, is_write=False)
        assert cost == pytest.approx(SPEC.cold_miss_time)
        assert c.stats.get("cold_misses") == 1

    def test_repeat_access_is_hit(self):
        c = make()
        c.access(0, 0, 8, False)
        cost = c.access(0, 0, 8, False)
        assert cost == pytest.approx(SPEC.hit_time)
        assert c.stats.get("hits") == 1

    def test_block_access_touches_each_line_once(self):
        c = make()
        c.access(0, 0, 256, True)  # 4 lines
        assert c.stats.get("cold_misses") == 4
        c.access(0, 0, 256, True)
        assert c.stats.get("hits") == 4

    def test_unaligned_block_spans_extra_line(self):
        c = make()
        c.access(0, 32, 64, False)  # crosses a line boundary
        assert c.stats.get("cold_misses") == 2

    def test_zero_bytes_free(self):
        c = make()
        assert c.access(0, 0, 0, True) == 0.0
        assert c.tracked_lines == 0


class TestCoherence:
    def test_read_of_remote_dirty_line_costs_coherence_miss(self):
        c = make()
        c.access(0, 0, 8, True)   # core 0 dirties the line
        cost = c.access(1, 0, 8, False)
        assert cost == pytest.approx(SPEC.coherence_miss_time)
        assert c.stats.get("coherence_misses") == 1

    def test_read_of_remote_clean_line_is_cold_fill(self):
        c = make()
        c.access(0, 0, 8, False)
        cost = c.access(1, 0, 8, False)
        assert cost == pytest.approx(SPEC.cold_miss_time)

    def test_write_upgrade_invalidates_readers(self):
        c = make()
        c.access(0, 0, 8, False)
        c.access(1, 0, 8, False)  # both share the line
        cost = c.access(0, 0, 8, True)
        assert cost == pytest.approx(SPEC.coherence_miss_time)
        assert c.stats.get("upgrade_misses") == 1
        # Core 1 was invalidated, so its next read misses.
        cost = c.access(1, 0, 8, False)
        assert cost == pytest.approx(SPEC.coherence_miss_time)

    def test_write_ping_pong_between_cores(self):
        c = make()
        c.access(0, 0, 8, True)
        total = 0.0
        for i in range(1, 7):
            total += c.access(i % 2, 0, 8, True)
        assert total == pytest.approx(6 * SPEC.coherence_miss_time)

    def test_private_blocks_do_not_interfere(self):
        c = make()
        c.access(0, 0, 64, True)
        c.access(1, 64, 64, True)  # adjacent but distinct lines
        assert c.access(0, 0, 64, True) == pytest.approx(SPEC.hit_time)
        assert c.access(1, 64, 64, True) == pytest.approx(SPEC.hit_time)

    def test_false_sharing_within_one_line(self):
        # Two cores write different bytes of the same 64B line: classic
        # false sharing; every alternation pays a coherence miss.
        c = make()
        c.access(0, 0, 8, True)
        cost1 = c.access(1, 32, 8, True)
        cost0 = c.access(0, 0, 8, True)
        assert cost1 == pytest.approx(SPEC.coherence_miss_time)
        assert cost0 == pytest.approx(SPEC.coherence_miss_time)

    def test_reset_clears_state_and_stats(self):
        c = make()
        c.access(0, 0, 8, True)
        c.reset()
        assert c.tracked_lines == 0
        assert c.stats.snapshot() == {}
