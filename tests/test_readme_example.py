"""The README quickstart snippet must actually run (kept in sync by hand --
this test IS the snippet, modulo the print)."""

import numpy as np
import pytest

import repro
from repro import Runtime, SharedArray


def test_top_level_exports():
    assert repro.__version__
    for name in ("Runtime", "SharedArray", "SamhitaConfig", "SamhitaSystem",
                 "PlacementPolicy"):
        assert hasattr(repro, name)


@pytest.mark.parametrize("backend", ["pthreads", "samhita"])
def test_readme_quickstart(backend):
    rt = Runtime(backend, n_threads=4)
    lock, bar = rt.create_lock(), rt.create_barrier()
    shared = {}

    def kernel(ctx, shared, lock, bar):
        if ctx.tid == 0:
            shared["arr"] = yield from SharedArray.allocate(ctx, rows=4, cols=16)
        yield from ctx.barrier(bar)                 # RegC global sync point
        arr = shared["arr"].view(ctx)
        yield from arr.write_rows(ctx.tid, np.full(16, float(ctx.tid)))
        yield from ctx.lock(lock)                   # consistency region begins
        yield from ctx.unlock(lock)
        yield from ctx.barrier(bar)
        return (yield from arr.read_all()).sum()

    rt.spawn_all(kernel, shared, lock, bar)
    result = rt.run()
    expected = 16 * (0 + 1 + 2 + 3)
    for t in result.threads:
        assert result.value_of(t) == pytest.approx(expected)
