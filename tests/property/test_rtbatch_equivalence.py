"""Batched round trips: off-state bit-identity and on-state data identity.

Two guarantees from DESIGN.md S14, checked across the same workload x
config matrix that generated ``rtbatch_pr8_digests.json`` (pinned at the
PR 8 tree, before the batched layer existed):

* ``batched_round_trips=False`` is **bit-identical** to PR 8: final data,
  modeled elapsed time, scheduled-event count, and every cache counter
  match the pins exactly, for every coherence/sharding/replication
  configuration in the matrix.
* ``batched_round_trips=True`` (the default) is **data-identical** to the
  off shape: the aggregated protocol may change timing and event counts,
  but the bytes every thread computes must not move.

Each cell runs once per session (results are memoized), so the hypothesis
sampling and the exhaustive sweep share the same 24 runs.
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import SamhitaConfig
from repro.experiments.harness import run_workload_direct
from repro.kernels.jacobi import JacobiParams, spawn_jacobi
from repro.kernels.md import MDParams, spawn_md

PINS = json.loads(
    (pathlib.Path(__file__).parent / "rtbatch_pr8_digests.json").read_text())

#: Config factories; each takes the batched_round_trips value so the same
#: matrix drives both the off-vs-pin and the on-vs-off comparisons. The
#: compat preset pins batched_round_trips=False itself -- the override
#: must win for the on-shape run.
CONFIGS = {
    "default": lambda b: SamhitaConfig(batched_round_trips=b),
    "compat": lambda b: SamhitaConfig.compat_cache(batched_round_trips=b),
    "adaptive": lambda b: SamhitaConfig.adaptive_cache(
        batched_round_trips=b),
    "sharded": lambda b: SamhitaConfig(
        manager_shards=2, n_memory_servers=2, batched_round_trips=b),
    "replicated": lambda b: SamhitaConfig(
        n_memory_servers=2, replication_factor=2, fencing=True,
        batched_round_trips=b),
    "ivy": lambda b: SamhitaConfig(coherence="ivy", batched_round_trips=b),
}

WORKLOADS = {
    ("jacobi", 0): (spawn_jacobi, JacobiParams(
        rows=32, cols=128, iterations=2, collect_result=True)),
    ("md", 11): (spawn_md, MDParams(
        n_particles=48, steps=3, seed=11, collect_state=True)),
    ("md", 23): (spawn_md, MDParams(
        n_particles=48, steps=3, seed=23, collect_state=True)),
    ("md", 47): (spawn_md, MDParams(
        n_particles=48, steps=3, seed=47, collect_state=True)),
}

CELLS = sorted(PINS)

_digest_cache: dict[tuple[str, int, str, bool], dict] = {}


def _digest(wname: str, seed: int, cname: str, batched: bool) -> dict:
    """The full trajectory digest for one matrix cell (memoized)."""
    key = (wname, seed, cname, batched)
    if key in _digest_cache:
        return _digest_cache[key]
    spawn_fn, params = WORKLOADS[(wname, seed)]
    config = CONFIGS[cname](batched)
    result = run_workload_direct("samhita", 4, spawn_fn, params,
                                 functional=True, config=config)
    h = hashlib.sha256()
    if wname == "jacobi":
        gdiff, grid = result.threads[0].value
        h.update(grid.tobytes())
        h.update(repr(gdiff).encode())
    else:
        energies, pos, vel = result.threads[0].value
        h.update(pos.tobytes())
        h.update(vel.tobytes())
        h.update(repr(energies).encode())
    digest = {
        "data_sha256": h.hexdigest(),
        "elapsed": result.elapsed,
        "events_scheduled": result.stats["engine"]["scheduled_events"],
        "cache_counters": dict(sorted(result.stats["caches"].items())),
    }
    _digest_cache[key] = digest
    return digest


def _split(cell: str) -> tuple[str, int, str]:
    wname, seed, cname = cell.split("-")
    return wname, int(seed), cname


def test_pin_matrix_shape() -> None:
    """The pin file covers exactly the declared matrix."""
    expected = {f"{w}-{s}-{c}"
                for (w, s) in WORKLOADS for c in CONFIGS}
    assert set(PINS) == expected
    for cell, pin in PINS.items():
        assert set(pin) == {"data_sha256", "elapsed", "events_scheduled",
                            "cache_counters"}, cell


@given(cell=st.sampled_from(CELLS))
@settings(max_examples=24, deadline=None)
def test_batched_off_bit_identical_to_pr8(cell: str) -> None:
    """Gate off => the full digest (data, elapsed, events, counters)
    matches the PR 8 pin bit for bit."""
    wname, seed, cname = _split(cell)
    digest = _digest(wname, seed, cname, batched=False)
    pin = PINS[cell]
    assert digest["data_sha256"] == pin["data_sha256"], cell
    assert digest["elapsed"] == pin["elapsed"], cell
    assert digest["events_scheduled"] == pin["events_scheduled"], cell
    assert digest["cache_counters"] == pin["cache_counters"], cell


def test_batched_off_full_matrix() -> None:
    """Exhaustive sweep of the same 24 cells: hypothesis sampling above
    may skip corners; coverage here is total (runs are memoized)."""
    diverged = [cell for cell in CELLS
                if _digest(*_split(cell), batched=False) != PINS[cell]]
    assert not diverged, f"off-state diverged from PR 8 pins: {diverged}"


@given(cell=st.sampled_from(CELLS))
@settings(max_examples=24, deadline=None)
def test_batched_on_data_identical_to_off(cell: str) -> None:
    """Gate on => identical final bytes. Timing and event counts may
    (and do) differ -- that is the point of batching -- so only the data
    digest is compared."""
    wname, seed, cname = _split(cell)
    on = _digest(wname, seed, cname, batched=True)
    off = _digest(wname, seed, cname, batched=False)
    assert on["data_sha256"] == off["data_sha256"], cell


def test_batched_on_actually_batches() -> None:
    """Sanity: on the default config the batched shape schedules fewer
    events than the per-operation shape (otherwise the data-identity
    tests above could pass trivially with the gate wired to nothing)."""
    on = _digest("jacobi", 0, "default", batched=True)
    off = _digest("jacobi", 0, "default", batched=False)
    assert on["events_scheduled"] < off["events_scheduled"]
