"""Property test: heap eviction is bit-identical to the legacy full sort.

The lazy min-heap (``impl="heap"``) claims its pop sequence equals the
ascending sort the legacy implementation (``impl="sorted"``) produces --
victim for victim, under every policy, through any interleaving of the
operations that move a page between key classes (install, read, write,
take_diff, evict, invalidate). Drive random op sequences through a paired
cache and assert ``choose_victims`` never diverges.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import EvictionPolicy, MemoryLayout, SoftwareCache

LAYOUT = MemoryLayout(page_bytes=256, pages_per_line=2)
N_PAGES = 10
PAGE = LAYOUT.page_bytes


def _pair(policy):
    caches = tuple(
        SoftwareCache(LAYOUT, capacity_pages=N_PAGES, functional=True,
                      policy=policy, name=impl, impl=impl)
        for impl in ("heap", "sorted"))
    return caches


ops = st.one_of(
    st.tuples(st.just("install"), st.integers(0, N_PAGES - 1)),
    st.tuples(st.just("read"), st.integers(0, N_PAGES - 1)),
    st.tuples(st.just("write"), st.integers(0, N_PAGES - 1)),
    st.tuples(st.just("take_diff"), st.integers(0, N_PAGES - 1)),
    st.tuples(st.just("evict"), st.integers(0, N_PAGES - 1)),
    st.tuples(st.just("invalidate"), st.integers(0, N_PAGES - 1)),
    st.tuples(st.just("victims"), st.integers(1, 3)),
)


@settings(max_examples=120, deadline=None)
@given(policy=st.sampled_from(list(EvictionPolicy)),
       script=st.lists(ops, min_size=1, max_size=60))
def test_heap_matches_sorted_victims(policy, script):
    heap_cache, sorted_cache = _pair(policy)
    for op, arg in script:
        if op == "install":
            if arg in heap_cache.entries or heap_cache.free_pages == 0:
                continue
            for c in (heap_cache, sorted_cache):
                c.install(arg, np.zeros(PAGE, np.uint8))
        elif op == "read":
            if arg not in heap_cache.entries:
                continue
            for c in (heap_cache, sorted_cache):
                c.read(arg * PAGE, 8)
        elif op == "write":
            if arg not in heap_cache.entries:
                continue
            payload = np.full(8, arg + 1, np.uint8)
            for c in (heap_cache, sorted_cache):
                c.write(arg * PAGE, 8, payload)
        elif op == "take_diff":
            if arg not in heap_cache.entries:
                continue
            for c in (heap_cache, sorted_cache):
                c.take_diff(arg)
        elif op == "evict":
            if arg not in heap_cache.entries:
                continue
            for c in (heap_cache, sorted_cache):
                if arg in c.dirty_page_ids():
                    c.take_diff(arg)
                c.evict(arg)
        elif op == "invalidate":
            if arg in heap_cache.dirty_page_ids():
                continue
            for c in (heap_cache, sorted_cache):
                c.invalidate([arg])
        else:  # victims
            count = min(arg, len(heap_cache.entries))
            if not count:
                continue
            assert (heap_cache.choose_victims(count)
                    == sorted_cache.choose_victims(count))
    # Final full drain must agree too.
    remaining = len(heap_cache.entries)
    if remaining:
        assert (heap_cache.choose_victims(remaining)
                == sorted_cache.choose_victims(remaining))


@settings(max_examples=60, deadline=None)
@given(policy=st.sampled_from(list(EvictionPolicy)),
       protect=st.sets(st.integers(0, N_PAGES - 1), max_size=N_PAGES - 2))
def test_heap_matches_sorted_with_protection(policy, protect):
    heap_cache, sorted_cache = _pair(policy)
    for page in range(N_PAGES):
        for c in (heap_cache, sorted_cache):
            c.install(page, np.zeros(PAGE, np.uint8))
    for page in (1, 4, 7):
        payload = np.ones(8, np.uint8)
        for c in (heap_cache, sorted_cache):
            c.write(page * PAGE, 8, payload)
    count = N_PAGES - len(protect)
    assert (heap_cache.choose_victims(count, protect=protect)
            == sorted_cache.choose_victims(count, protect=protect))


def test_heap_compaction_rebuild_preserves_order():
    # Hammer one page with clean->dirty transitions to flood the heap with
    # stale records until the 4*len(entries)+64 rebuild threshold trips.
    heap_cache, sorted_cache = _pair(EvictionPolicy.DIRTY_BIASED)
    for page in range(N_PAGES):
        for c in (heap_cache, sorted_cache):
            c.install(page, np.zeros(PAGE, np.uint8))
    for i in range(200):
        page = i % N_PAGES
        payload = np.full(8, (i % 250) + 1, np.uint8)
        for c in (heap_cache, sorted_cache):
            c.write(page * PAGE, 8, payload)
            c.take_diff(page)
    assert len(heap_cache._heap) > 4 * N_PAGES + 64  # stale flood built up
    assert (heap_cache.choose_victims(N_PAGES)
            == sorted_cache.choose_victims(N_PAGES))
    # choose_victims detected the flood and rebuilt from live entries.
    assert len(heap_cache._heap) <= 4 * N_PAGES + 64
