"""Property test: the vectorized MESI-lite model against a per-line
reference implementation (the obvious dict-based version)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import CoherentCacheModel
from repro.hardware.specs import CacheSpec

SPEC = CacheSpec(line_bytes=64, cold_miss_time=60e-9, coherence_miss_time=80e-9)


class ReferenceCache:
    """Straightforward per-line implementation of the same protocol."""

    def __init__(self, spec: CacheSpec):
        self.spec = spec
        self.lines: dict[int, dict] = {}

    def access(self, core, addr, nbytes, is_write):
        if nbytes <= 0:
            return 0.0
        lb = self.spec.line_bytes
        cost = 0.0
        for line in range(addr // lb, (addr + nbytes - 1) // lb + 1):
            state = self.lines.get(line)
            if state is None:
                state = {"sharers": set(), "writer": None}
                self.lines[line] = state
                cost += self.spec.cold_miss_time
            elif core not in state["sharers"]:
                if state["writer"] is not None and state["writer"] != core:
                    cost += self.spec.coherence_miss_time
                else:
                    cost += self.spec.cold_miss_time
            elif is_write and len(state["sharers"]) > 1:
                cost += self.spec.coherence_miss_time
            else:
                cost += self.spec.hit_time
            if is_write:
                state["sharers"] = {core}
                state["writer"] = core
            else:
                state["sharers"].add(core)
        return cost


accesses = st.lists(
    st.tuples(st.integers(0, 7),            # core
              st.integers(0, 4000),         # addr
              st.integers(1, 512),          # nbytes
              st.booleans()),               # is_write
    min_size=1, max_size=60)


@given(accesses)
@settings(max_examples=120, deadline=None)
def test_vectorized_model_matches_reference(ops):
    fast = CoherentCacheModel(SPEC)
    ref = ReferenceCache(SPEC)
    for core, addr, nbytes, is_write in ops:
        got = fast.access(core, addr, nbytes, is_write)
        want = ref.access(core, addr, nbytes, is_write)
        assert got == pytest.approx(want), (core, addr, nbytes, is_write)


@given(accesses)
@settings(max_examples=60, deadline=None)
def test_costs_are_nonnegative_and_bounded(ops):
    model = CoherentCacheModel(SPEC)
    for core, addr, nbytes, is_write in ops:
        cost = model.access(core, addr, nbytes, is_write)
        lines = (addr + nbytes - 1) // 64 - addr // 64 + 1
        assert 0.0 <= cost <= lines * SPEC.coherence_miss_time + 1e-18
