"""Property tests: allocator invariants under random allocation sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import AllocationKind, SamhitaAllocator
from repro.core.params import SamhitaConfig

sizes = st.integers(1, 4 << 20)
alloc_requests = st.lists(st.tuples(st.integers(0, 3), sizes),
                          min_size=1, max_size=40)


def _alloc(allocator, tid, size):
    """Drive the allocator the way the manager + thread paths do."""
    kind = allocator.classify(size)
    if kind is AllocationKind.ARENA:
        addr = allocator.arena_alloc(tid, size)
        if addr is None:
            allocator.refill_arena(tid, size)
            addr = allocator.arena_alloc(tid, size)
        return addr
    if kind is AllocationKind.SHARED_ZONE:
        return allocator.shared_alloc(size, tid)
    return allocator.striped_alloc(size, tid)


@given(alloc_requests, st.integers(1, 4))
@settings(max_examples=100, deadline=None)
def test_allocations_never_overlap(requests, n_servers):
    allocator = SamhitaAllocator(SamhitaConfig(n_memory_servers=n_servers))
    intervals = []
    for tid, size in requests:
        addr = _alloc(allocator, tid, size)
        assert addr is not None and addr > 0
        intervals.append((addr, addr + size, tid))
    intervals.sort()
    for (s1, e1, _), (s2, _, _) in zip(intervals, intervals[1:]):
        assert s2 >= e1, "allocations overlap"


@given(alloc_requests, st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_every_allocated_page_has_exactly_one_home(requests, n_servers):
    allocator = SamhitaAllocator(SamhitaConfig(n_memory_servers=n_servers))
    layout = allocator.layout
    for tid, size in requests:
        addr = _alloc(allocator, tid, size)
        for page in layout.pages_spanning(addr, size):
            home = allocator.home_of_page(page)
            assert 0 <= home < n_servers
            # Stable: asking twice gives the same answer.
            assert allocator.home_of_page(page) == home


@given(alloc_requests)
@settings(max_examples=60, deadline=None)
def test_lines_never_split_across_servers(requests):
    allocator = SamhitaAllocator(SamhitaConfig(n_memory_servers=3))
    layout = allocator.layout
    for tid, size in requests:
        addr = _alloc(allocator, tid, size)
        for line in layout.lines_spanning(addr, size):
            homes = set()
            for page in layout.line_pages(line):
                try:
                    homes.add(allocator.home_of_page(page))
                except Exception:
                    pass  # line tail outside any allocation
            assert len(homes) <= 1, f"line {line} spans servers {homes}"


@given(st.lists(st.tuples(st.integers(0, 1), st.integers(1, 60_000)),
                min_size=2, max_size=40))
@settings(max_examples=60, deadline=None)
def test_arena_allocations_are_thread_private_pages(requests):
    """No page ever holds arena data of two different threads."""
    allocator = SamhitaAllocator(SamhitaConfig())
    layout = allocator.layout
    page_owner: dict[int, int] = {}
    for tid, size in requests:
        addr = _alloc(allocator, tid, size)
        for page in layout.pages_spanning(addr, size):
            owner = page_owner.setdefault(page, tid)
            assert owner == tid, "arena page shared between threads"


@given(alloc_requests)
@settings(max_examples=40, deadline=None)
def test_classification_is_monotone_in_size(requests):
    allocator = SamhitaAllocator(SamhitaConfig())
    order = {AllocationKind.ARENA: 0, AllocationKind.SHARED_ZONE: 1,
             AllocationKind.STRIPED: 2}
    sizes_sorted = sorted(size for _, size in requests)
    kinds = [order[allocator.classify(s)] for s in sizes_sorted]
    assert kinds == sorted(kinds)
