"""Property tests: RegC barrier-plan invariants under random write notices."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consistency import plan_barrier
from repro.memory import PageDirectory

notice_maps = st.dictionaries(
    keys=st.integers(0, 7),
    values=st.lists(st.integers(0, 30), max_size=12),
    min_size=1, max_size=8,
)


@given(notice_maps)
@settings(max_examples=150, deadline=None)
def test_plan_invariants(notices):
    directory = PageDirectory()
    plan = plan_barrier(notices, directory)
    notice_sets = {t: set(p) for t, p in notices.items()}
    all_pages = set().union(*notice_sets.values()) if notice_sets else set()

    for tid, mine in notice_sets.items():
        flush = set(plan.flush[tid])
        inv = set(plan.invalidate[tid])
        # 1. You only flush pages you actually wrote.
        assert flush <= mine
        # 2. Flushed pages are exactly your multi-writer pages.
        assert flush == mine & plan.multi_writer_pages
        # 3. You never invalidate your own single-writer pages.
        assert not (inv & (mine - plan.multi_writer_pages))
        # 4. You invalidate every page someone else wrote.
        others = all_pages - (mine - plan.multi_writer_pages)
        assert inv == others
        # 5. Flush implies invalidate (after merging, refetch from home).
        assert flush <= inv


@given(notice_maps)
@settings(max_examples=150, deadline=None)
def test_ownership_postconditions(notices):
    directory = PageDirectory()
    plan = plan_barrier(notices, directory)
    writers: dict[int, list[int]] = {}
    for tid, pages in notices.items():
        for page in set(pages):
            writers.setdefault(page, []).append(tid)
    for page, tids in writers.items():
        if len(tids) == 1:
            assert directory.owner_of(page) == tids[0]
        else:
            assert directory.owner_of(page) is None
            assert page in plan.multi_writer_pages


@given(notice_maps, notice_maps)
@settings(max_examples=80, deadline=None)
def test_prior_ownership_only_changes_for_noticed_pages(first, second):
    directory = PageDirectory()
    plan_barrier(first, directory)
    before = {p: directory.owner_of(p) for p in range(31)}
    plan_barrier(second, directory)
    touched = set().union(*(set(p) for p in second.values())) if second else set()
    for page in range(31):
        if page not in touched:
            assert directory.owner_of(page) == before[page]
