"""Property tests: the epoch-sliced engine is bit-identical to the scalar
engine.

Random programs of Timeout / AdvanceTo / SimEvent / Process operations run
through both queue implementations; the observable trajectory -- every
``(now, seq)`` pair at every resumption, the coalesced count, the final
clock, even the deadlock diagnosis -- must match exactly. The epoch core
may only change *how* the queue is stored, never what runs when.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import (AdvanceTo, Engine, EpochEngine, ScalarEngine,
                              Timeout, engine_variant)

#: Delays drawn from a small grid so distinct processes collide on the same
#: instant often -- equal-time collisions are exactly what exercises epoch
#: bucketing (and the seq tie-break in the scalar heap).
DELAY_GRID = (0.0, 1e-6, 2e-6, 1e-5, 0.25, 0.5, 1.0)

N_EVENTS = 4

ops = st.one_of(
    st.tuples(st.just("timeout"), st.sampled_from(DELAY_GRID)),
    st.tuples(st.just("advance_to"), st.sampled_from(DELAY_GRID)),
    st.tuples(st.just("wait"), st.integers(0, N_EVENTS - 1)),
    st.tuples(st.just("trigger"), st.integers(0, N_EVENTS - 1),
              st.integers(0, 99)),
    st.tuples(st.just("timer"), st.sampled_from(DELAY_GRID),
              st.integers(0, N_EVENTS - 1)),
    st.tuples(st.just("join"), st.integers(0, 7)),
)

programs = st.lists(st.lists(ops, max_size=6), min_size=1, max_size=5)


def run_program(engine_cls, program, coalesce=None, until=math.inf):
    """Drive one random program; return its full observable trajectory."""
    eng = engine_cls(coalesce=coalesce)
    events = [eng.event(name=f"ev{i}") for i in range(N_EVENTS)]
    trace = []
    procs = []

    def body(pid, prog):
        for k, op in enumerate(prog):
            kind = op[0]
            if kind == "timeout":
                yield Timeout(op[1])
            elif kind == "advance_to":
                yield AdvanceTo(eng.now + op[1])
            elif kind == "wait":
                got = yield events[op[1]]
                trace.append(("got", pid, k, got))
            elif kind == "trigger":
                ev = events[op[1]]
                if not ev.triggered:
                    ev.succeed(op[2])
            elif kind == "timer":
                delay, i = op[1], op[2]
                ev = events[i]

                def fire(ev=ev, val=i):
                    if not ev.triggered:
                        ev.succeed(val)

                eng.schedule(delay, fire)
            elif kind == "join":
                if pid:  # only earlier processes: no forward cycles
                    yield procs[op[1] % pid]
            trace.append((pid, k, eng.now, eng._seq))

    for pid, prog in enumerate(program):
        procs.append(eng.process(body(pid, prog), name=f"p{pid}"))
    outcome = "drained"
    try:
        eng.run(until=until)
    except DeadlockError as exc:
        outcome = ("deadlock", eng.now, sorted(p.name for p in exc.blocked))
    return {
        "trace": trace,
        "outcome": outcome,
        "now": eng.now,
        "seq": eng.scheduled_events,
        "coalesced": eng.coalesced_events,
        "live": sorted(p.name for p in eng.live_processes),
    }


@given(programs)
@settings(max_examples=120, deadline=None)
def test_epoch_engine_matches_scalar_engine(program):
    scalar = run_program(ScalarEngine, program)
    epoch = run_program(EpochEngine, program)
    assert scalar == epoch


@given(programs)
@settings(max_examples=60, deadline=None)
def test_equivalence_holds_with_coalescing_off(program):
    scalar = run_program(ScalarEngine, program, coalesce=False)
    epoch = run_program(EpochEngine, program, coalesce=False)
    assert scalar == epoch
    assert scalar["coalesced"] == 0


@given(programs)
@settings(max_examples=60, deadline=None)
def test_coalescing_never_changes_the_simulated_trajectory(program):
    """On vs off must agree on every (pid, op, now) observation and the
    final clock; only queue traffic (seq, coalesced) may differ."""
    on = run_program(EpochEngine, program, coalesce=True)
    off = run_program(EpochEngine, program, coalesce=False)
    strip = lambda rec: rec[:3]  # noqa: E731 - drop the seq column
    assert [strip(r) for r in on["trace"]] == [strip(r) for r in off["trace"]]
    assert on["now"] == off["now"]
    assert on["outcome"] == off["outcome"]


@given(programs, st.sampled_from([0.0, 1e-6, 0.3, 0.75, 2.0]))
@settings(max_examples=60, deadline=None)
def test_equivalence_holds_under_a_run_horizon(program, until):
    scalar = run_program(ScalarEngine, program, until=until)
    epoch = run_program(EpochEngine, program, until=until)
    assert scalar == epoch


# ----------------------------------------------------------------------
# deterministic epoch-core corner cases
# ----------------------------------------------------------------------

def test_mid_slice_same_time_appends_dispatch_in_order():
    eng = EpochEngine()
    order = []
    eng.schedule(1.0, lambda: (order.append("a"),
                               eng.schedule(0.0, lambda: order.append("c"))))
    eng.schedule(1.0, lambda: order.append("b"))
    eng.run()
    assert order == ["a", "b", "c"]
    assert eng.now == 1.0
    assert eng.epochs_run == 1  # one epoch absorbed the live append
    assert not eng._buckets and not eng._times


def test_epoch_engine_retains_undispatched_tail_on_error():
    eng = EpochEngine()
    ran = []

    def boom():
        raise SimulationError("mid-slice failure")

    eng.schedule(1.0, ran.append, 1)
    eng.schedule(1.0, boom)
    eng.schedule(1.0, ran.append, 3)
    with pytest.raises(SimulationError):
        eng.run()
    assert ran == [1]
    assert eng.pending_epochs().tolist() == [1.0]  # tail still queued
    eng.run()
    assert ran == [1, 3]


def test_clear_pending_empties_both_columns():
    eng = EpochEngine()
    eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    eng.clear_pending()
    assert not eng._times and not eng._buckets
    assert eng.run() == 0.0


def test_factory_honours_impl_and_reports_variant():
    assert isinstance(Engine(impl="scalar"), ScalarEngine)
    assert isinstance(Engine(impl="epoch"), EpochEngine)
    default = Engine()
    assert default.variant == engine_variant()  # env-selected build default
    with pytest.raises(SimulationError):
        Engine(impl="simd")
