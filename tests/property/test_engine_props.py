"""Property tests: engine scheduling and determinism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, Timeout

delays = st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1,
                  max_size=30)


@given(delays)
@settings(max_examples=100, deadline=None)
def test_callbacks_fire_in_nondecreasing_time_order(delay_list):
    eng = Engine()
    fired = []
    for d in delay_list:
        eng.schedule(d, lambda d=d: fired.append(eng.now))
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delay_list)
    assert eng.now == max(delay_list)


@given(delays)
@settings(max_examples=100, deadline=None)
def test_equal_simulations_are_identical(delay_list):
    def run_once():
        eng = Engine()
        log = []

        def proc(i, d):
            yield Timeout(d)
            log.append((eng.now, i))
            yield Timeout(d / 2 + 0.1)
            log.append((eng.now, i))

        for i, d in enumerate(delay_list):
            eng.process(proc(i, d), name=f"p{i}")
        eng.run()
        return log

    assert run_once() == run_once()


@given(st.lists(st.floats(0.1, 50.0, allow_nan=False), min_size=2, max_size=12))
@settings(max_examples=60, deadline=None)
def test_process_total_time_is_sum_of_timeouts(delay_list):
    eng = Engine()
    done = {}

    def proc():
        for d in delay_list:
            yield Timeout(d)
        done["at"] = eng.now

    eng.process(proc())
    eng.run()
    assert abs(done["at"] - sum(delay_list)) < 1e-9 * max(1.0, sum(delay_list))
