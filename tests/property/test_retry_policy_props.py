"""Property tests: RetryPolicy.delay backoff-law invariants.

The reliable-transport retransmit timer and the shed-backoff loop both
take their waits from :meth:`RetryPolicy.delay`. Three things must hold
for every legal policy, attempt number and timeout floor:

* the wait is monotone non-decreasing in the attempt number (backoff
  never *shrinks* under pressure),
* the wait never exceeds the cap -- ``max_backoff``, or the floor when a
  bulk trip's legitimate reply time exceeds it,
* the law is a pure function: same inputs, same wait, bit for bit (the
  simulator's determinism contract runs through this).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import RetryPolicy

policies = st.builds(
    RetryPolicy,
    timeout=st.floats(1e-7, 1e-3, allow_nan=False, allow_infinity=False),
    backoff=st.floats(1.0, 8.0, allow_nan=False, allow_infinity=False),
    max_backoff=st.floats(1e-3, 1e-1, allow_nan=False,
                          allow_infinity=False),
    max_retries=st.integers(1, 128),
)

attempts = st.integers(1, 64)
floors = st.floats(0.0, 1e-2, allow_nan=False, allow_infinity=False)


@given(policies, attempts, floors)
@settings(max_examples=200, deadline=None)
def test_delay_is_monotone_in_attempt(policy, attempt, floor):
    assert policy.delay(attempt + 1, floor) >= policy.delay(attempt, floor)


@given(policies, attempts, floors)
@settings(max_examples=200, deadline=None)
def test_delay_is_capped(policy, attempt, floor):
    cap = max(policy.max_backoff, floor)
    assert policy.delay(attempt, floor) <= cap


@given(policies, attempts, floors)
@settings(max_examples=200, deadline=None)
def test_delay_is_at_least_the_base_timeout(policy, attempt, floor):
    """The first wait is the (floored) timeout itself; later waits only
    grow from there, so no wait undercuts the base."""
    base = min(max(policy.timeout, floor), max(policy.max_backoff, floor))
    assert policy.delay(attempt, floor) >= base


@given(policies, attempts, floors)
@settings(max_examples=200, deadline=None)
def test_delay_is_deterministic(policy, attempt, floor):
    assert policy.delay(attempt, floor) == policy.delay(attempt, floor)


@given(policies, attempts)
@settings(max_examples=200, deadline=None)
def test_zero_floor_reproduces_the_historical_law(policy, attempt):
    """floor=0 must be the exact pre-floor backoff law: base timeout,
    exponential growth, max_backoff cap."""
    expected = min(policy.timeout * policy.backoff ** (attempt - 1),
                   policy.max_backoff)
    assert policy.delay(attempt) == expected
    assert policy.delay(attempt, 0.0) == expected


@given(policies, attempts, floors)
@settings(max_examples=200, deadline=None)
def test_floor_raises_the_first_wait_to_the_floor(policy, attempt, floor):
    """A floor above the static timeout must lift every wait to at least
    the floor (a retransmit timer shorter than the legitimate bulk reply
    time would fire spuriously)."""
    if floor > policy.timeout:
        assert policy.delay(attempt, floor) >= min(
            floor, max(policy.max_backoff, floor))
        assert policy.delay(1, floor) == floor
