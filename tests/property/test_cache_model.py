"""Property test: the software cache against a brute-force reference model.

The reference tracks, per byte, what a correct cache must return: reads see
the latest locally-written or installed value; diffs contain exactly the
bytes whose values changed since the twin snapshot; invalidation forgets
cleanly. Random operation sequences must keep the real cache and the
reference in lockstep.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import MemoryLayout, SoftwareCache

LAYOUT = MemoryLayout(page_bytes=256, pages_per_line=2)  # small pages: more edges
N_PAGES = 6
SPAN = LAYOUT.page_bytes * N_PAGES


class ReferenceModel:
    """Byte-array mirror of what the cache should contain."""

    def __init__(self):
        self.resident: dict[int, np.ndarray] = {}
        self.twin: dict[int, np.ndarray] = {}

    def install(self, page, data):
        self.resident[page] = data.copy()

    def write(self, addr, data):
        for i, b in enumerate(data):
            page = (addr + i) // LAYOUT.page_bytes
            off = (addr + i) % LAYOUT.page_bytes
            if page not in self.twin:
                self.twin[page] = self.resident[page].copy()
            self.resident[page][off] = b

    def read(self, addr, nbytes):
        out = np.empty(nbytes, np.uint8)
        for i in range(nbytes):
            page = (addr + i) // LAYOUT.page_bytes
            off = (addr + i) % LAYOUT.page_bytes
            out[i] = self.resident[page][off]
        return out

    def diff_bytes(self, page):
        if page not in self.twin:
            return 0
        return int((self.twin[page] != self.resident[page]).sum())

    def take_diff(self, page):
        count = self.diff_bytes(page)
        self.twin.pop(page, None)
        return count

    def invalidate(self, page):
        self.resident.pop(page, None)


ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, SPAN - 17),
                  st.integers(1, 16), st.integers(0, 255)),
        st.tuples(st.just("read"), st.integers(0, SPAN - 17),
                  st.integers(1, 16)),
        st.tuples(st.just("diff"), st.integers(0, N_PAGES - 1)),
        st.tuples(st.just("invalidate"), st.integers(0, N_PAGES - 1)),
    ),
    min_size=1, max_size=40,
)


@given(ops)
@settings(max_examples=120, deadline=None)
def test_cache_matches_reference_model(operations):
    cache = SoftwareCache(LAYOUT, capacity_pages=N_PAGES + 2, functional=True)
    ref = ReferenceModel()
    rng = np.random.default_rng(0)
    # Install all pages with a deterministic pattern.
    for page in range(N_PAGES):
        data = rng.integers(0, 256, LAYOUT.page_bytes).astype(np.uint8)
        cache.install(page, data.copy())
        ref.install(page, data)

    for op in operations:
        kind = op[0]
        if kind == "write":
            _, addr, nbytes, value = op
            pages = LAYOUT.pages_spanning(addr, nbytes)
            if any(not cache.resident(p) for p in pages):
                continue  # skip writes to invalidated pages
            data = np.full(nbytes, value, np.uint8)
            cache.write(addr, nbytes, data)
            ref.write(addr, data)
        elif kind == "read":
            _, addr, nbytes = op
            pages = LAYOUT.pages_spanning(addr, nbytes)
            if any(not cache.resident(p) for p in pages):
                continue
            got = cache.read(addr, nbytes)
            assert np.array_equal(np.asarray(got), ref.read(addr, nbytes))
        elif kind == "diff":
            _, page = op
            if not cache.resident(page):
                continue
            diff = cache.take_diff(page)
            expected = ref.take_diff(page)
            got = diff.payload_bytes if diff is not None else 0
            assert got == expected
        else:  # invalidate
            _, page = op
            entry = cache.entries.get(page)
            if entry is None or entry.is_dirty:
                continue  # protocol forbids invalidating dirty pages
            cache.invalidate([page])
            ref.invalidate(page)


@given(st.lists(st.tuples(st.integers(0, SPAN - 9), st.integers(1, 8),
                          st.integers(0, 255)), min_size=1, max_size=30))
@settings(max_examples=80, deadline=None)
def test_diff_roundtrip_reconstructs_home_page(writes):
    """Applying every taken diff to pristine home copies reproduces the
    cache contents exactly (the write-back correctness property)."""
    cache = SoftwareCache(LAYOUT, capacity_pages=N_PAGES + 2, functional=True)
    home = {p: np.zeros(LAYOUT.page_bytes, np.uint8) for p in range(N_PAGES)}
    for page in range(N_PAGES):
        cache.install(page, home[page].copy())

    for addr, nbytes, value in writes:
        cache.write(addr, nbytes, np.full(nbytes, value, np.uint8))

    for page in range(N_PAGES):
        diff = cache.take_diff(page)
        if diff is not None:
            diff.apply_to(home[page])

    for page in range(N_PAGES):
        assert np.array_equal(home[page], cache.entries[page].data)


@given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, SPAN - 9),
                          st.integers(1, 8)), min_size=2, max_size=30))
@settings(max_examples=80, deadline=None)
def test_concurrent_writers_merge_disjointly(writes):
    """Two caches writing through twins merge at a home without losing any
    byte either of them wrote last (writes here are made disjoint by
    masking each writer to its own half of every page)."""
    caches = [SoftwareCache(LAYOUT, capacity_pages=N_PAGES + 2, name=f"c{i}")
              for i in range(2)]
    home = {p: np.zeros(LAYOUT.page_bytes, np.uint8) for p in range(N_PAGES)}
    for cache in caches:
        for page in range(N_PAGES):
            cache.install(page, home[page].copy())

    half = LAYOUT.page_bytes // 2
    expected = {p: home[p].copy() for p in range(N_PAGES)}
    for writer, addr, nbytes in writes:
        # Clamp the write into the writer's half of its page.
        page = LAYOUT.page_of(addr)
        off = min(LAYOUT.page_offset(addr) % half, half - nbytes) if nbytes <= half else 0
        start = page * LAYOUT.page_bytes + writer * half + max(off, 0)
        nbytes = min(nbytes, half)
        data = np.full(nbytes, writer + 1, np.uint8)
        caches[writer].write(start, nbytes, data)
        expected[page][start - page * LAYOUT.page_bytes:
                       start - page * LAYOUT.page_bytes + nbytes] = data

    for cache in caches:
        for page in range(N_PAGES):
            diff = cache.take_diff(page)
            if diff is not None:
                diff.apply_to(home[page])

    for page in range(N_PAGES):
        assert np.array_equal(home[page], expected[page])
