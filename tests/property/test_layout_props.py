"""Property tests: address-layout arithmetic invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import MemoryLayout

layouts = st.builds(
    MemoryLayout,
    page_bytes=st.sampled_from([256, 1024, 4096, 16384]),
    pages_per_line=st.integers(1, 8),
)


@given(layouts, st.integers(0, 1 << 30))
@settings(max_examples=150, deadline=None)
def test_page_decomposition_roundtrips(layout, addr):
    page = layout.page_of(addr)
    offset = layout.page_offset(addr)
    assert layout.page_addr(page) + offset == addr
    assert 0 <= offset < layout.page_bytes


@given(layouts, st.integers(0, 1 << 30), st.integers(0, 1 << 16))
@settings(max_examples=150, deadline=None)
def test_pages_spanning_covers_exactly_the_range(layout, addr, nbytes):
    pages = list(layout.pages_spanning(addr, nbytes))
    if nbytes == 0:
        assert pages == []
        return
    # First/last byte fall in the first/last page; pages are contiguous.
    assert pages[0] == layout.page_of(addr)
    assert pages[-1] == layout.page_of(addr + nbytes - 1)
    assert pages == list(range(pages[0], pages[-1] + 1))
    # Total coverage equals the span, counted bytewise per page.
    covered = 0
    for page in pages:
        start = max(addr, layout.page_addr(page))
        end = min(addr + nbytes, layout.page_addr(page + 1))
        covered += end - start
    assert covered == nbytes


@given(layouts, st.integers(0, 1 << 20))
@settings(max_examples=100, deadline=None)
def test_lines_partition_pages(layout, page):
    line = layout.line_of_page(page)
    assert page in layout.line_pages(line)
    assert len(layout.line_pages(line)) == layout.pages_per_line
    # Adjacent lines don't overlap and tile the page space.
    assert layout.line_pages(line)[-1] + 1 == layout.line_pages(line + 1)[0]


@given(layouts, st.integers(0, 1 << 24))
@settings(max_examples=100, deadline=None)
def test_align_up_properties(layout, nbytes):
    aligned = layout.align_up(nbytes)
    assert aligned >= nbytes
    assert aligned % layout.page_bytes == 0
    assert aligned - nbytes < layout.page_bytes
