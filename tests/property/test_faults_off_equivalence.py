"""Property test: an armed-but-silent fault injector changes nothing.

Importing the faults subsystem and attaching an injector whose plan has
every rate at zero must leave the simulation bit-identical to the
injector-absent build: same per-thread clocks, same cache counters, same
read results and pending diffs, same elapsed time. This is the determinism
contract that lets the chaos harness trust its fault-free baselines.

Reuses the observable-state capture machinery of
:mod:`tests.property.test_plan_equivalence`.
"""

from hypothesis import given, settings

from repro.core.params import SamhitaConfig
from repro.faults import FaultPlan

from tests.property.test_plan_equivalence import _run, operations


@given(operations)
@settings(max_examples=25, deadline=None)
def test_silent_injector_is_bit_identical_functional(ops):
    bare = _run(ops, functional=True, use_plan=True)
    armed = _run(ops, functional=True, use_plan=True,
                 config=SamhitaConfig(functional=True,
                                      faults=FaultPlan(seed=1234)))
    assert bare == armed


@given(operations)
@settings(max_examples=25, deadline=None)
def test_silent_injector_is_bit_identical_timing(ops):
    bare = _run(ops, functional=False, use_plan=False)
    armed = _run(ops, functional=False, use_plan=False,
                 config=SamhitaConfig(functional=False,
                                      faults=FaultPlan(seed=99)))
    assert bare == armed


def test_silent_plan_reports_silent():
    assert FaultPlan(seed=7).silent
    assert not FaultPlan(seed=7, drop_rate=0.01).silent
    assert not FaultPlan(
        seed=7, server_crash_windows=(("node1", 0.0, 1.0),)).silent
