"""Property tests for the fencing-epoch membership view.

The split-brain safety argument reduces to two invariants of
:class:`repro.core.membership.Membership`, checked here over arbitrary
interleavings of promotions (= partitions resolving into failovers,
in any order, against any keys):

* **Exactly one epoch-valid primary per key**: after any promotion
  history, exactly one owner passes :meth:`validate` for each promoted
  key -- there is never an instant with two writers the fence would admit.
* **Stale stamps are always rejected**: every ``(owner, epoch)``
  credential that was ever valid for a key is rejected the moment a newer
  promotion lands, including re-promotions of the *same* owner (the old
  epoch alone damns it). Only the latest credential survives.

A third suite pins the injector's window arithmetic
(``came_up_between``) against brute-force sampling of ``server_down`` --
the failure detector's heal-reset correctness hangs off this oracle.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.membership import Membership
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan

KEYS = 4
OWNERS = 3

promotions = st.lists(
    st.tuples(st.integers(0, KEYS - 1), st.integers(0, OWNERS - 1)),
    max_size=40)


@given(promotions)
@settings(max_examples=100, deadline=None)
def test_exactly_one_epoch_valid_primary_per_key(history):
    m = Membership()
    for key, owner in history:
        m.promote(key, owner)
    assert m.epoch == len(history)
    promoted = {key for key, _ in history}
    for key in promoted:
        valid = [o for o in range(OWNERS) if m.validate(key, o, m.epoch)]
        assert len(valid) == 1
        assert valid[0] == m.primary_of(key)


@given(promotions)
@settings(max_examples=100, deadline=None)
def test_stale_stamps_are_always_rejected(history):
    m = Membership()
    stamps = []  # every credential that was ever the valid one for its key
    for key, owner in history:
        epoch = m.promote(key, owner)
        stamps.append((key, owner, epoch))
    latest = {}
    for key, owner, epoch in stamps:
        latest[key] = (owner, epoch)
    for key, owner, epoch in stamps:
        accepted = m.validate(key, owner, epoch)
        assert accepted == (latest[key] == (owner, epoch))


@given(promotions)
@settings(max_examples=50, deadline=None)
def test_fence_epoch_matches_the_installing_promotion(history):
    m = Membership()
    installed = {}
    for key, owner in history:
        installed[key] = m.promote(key, owner)
    for key, epoch in installed.items():
        assert m.fence_epoch_of(key) == epoch
        # The epoch minted one step earlier is stale for this key.
        assert not m.validate(key, m.primary_of(key), epoch - 1)
        assert m.validate(key, m.primary_of(key), epoch)


# ----------------------------------------------------------------------
# Injector window arithmetic: came_up_between vs brute-force sampling.
# ----------------------------------------------------------------------

# Times snap to a 1 us grid: the oracle reasons over *continuous* time, so
# a cut starting at a denormal like 5e-324 is "preceded by uptime" even
# though no float exists in (0, 5e-324) for the sampler to witness. Grid
# times keep every nonempty gap wide enough to hold a representable sample
# while preserving all the edge-sharing/zero-gap cases that matter.
_us = lambda lo, hi: st.integers(lo, hi).map(lambda n: n * 1e-6)

windows = st.lists(
    st.tuples(_us(0, 1000), _us(1, 300)),
    min_size=0, max_size=4)


@given(windows, _us(0, 1200), _us(1, 400))
@settings(max_examples=200, deadline=None)
def test_came_up_between_matches_sampled_reachability(cuts, since, span):
    until = since + span
    partitions = tuple((("node1",), start, start + length)
                       for start, length in cuts)
    injector = FaultInjector(FaultPlan(seed=3, partitions=partitions))
    # Brute force: reachable at any sampled instant in (since, until]?
    # The oracle reasons over window *gaps*, so sample every window edge
    # inside the interval plus midpoints between consecutive edges.
    edges = sorted({since, until}
                   | {t for _, s, e in partitions for t in (s, e)
                      if since < t <= until})
    samples = set(edges)
    for a, b in zip(edges, edges[1:]):
        samples.add((a + b) / 2)
    samples = [t for t in samples if since < t <= until]
    expected = any(not injector.server_down("node1", t) for t in samples)
    assert injector.came_up_between("node1", since, until) == expected
