"""Property tests: store logs reconstruct exactly the bytes they recorded."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import MemoryLayout, StoreLog

LAYOUT = MemoryLayout(page_bytes=512, pages_per_line=2)
SPAN = 4 * 512

stores = st.lists(
    st.tuples(st.integers(0, SPAN - 33), st.integers(1, 32),
              st.integers(0, 255)),
    min_size=1, max_size=40)


@given(stores)
@settings(max_examples=120, deadline=None)
def test_page_diffs_reconstruct_the_store_sequence(ops):
    log = StoreLog(LAYOUT)
    image = np.zeros(SPAN, dtype=np.uint8)
    for addr, nbytes, value in ops:
        data = np.full(nbytes, value, dtype=np.uint8)
        log.record(addr, nbytes, data)
        image[addr:addr + nbytes] = data

    rebuilt = np.zeros(SPAN, dtype=np.uint8)
    for diff in log.to_page_diffs():
        page_view = rebuilt[diff.page * 512:(diff.page + 1) * 512]
        diff.apply_to(page_view)
    assert np.array_equal(rebuilt, image)


@given(stores)
@settings(max_examples=80, deadline=None)
def test_wire_size_accounts_every_byte_plus_headers(ops):
    log = StoreLog(LAYOUT)
    total = 0
    for addr, nbytes, value in ops:
        log.record(addr, nbytes, np.full(nbytes, value, np.uint8))
        total += nbytes
    assert log.payload_bytes == total
    assert log.wire_bytes == total + len(ops) * StoreLog.ENTRY_HEADER_BYTES
    # Splitting across pages preserves total payload.
    assert sum(d.payload_bytes for d in log.to_page_diffs()) == total


@given(stores)
@settings(max_examples=60, deadline=None)
def test_diff_pages_are_sorted_and_within_bounds(ops):
    log = StoreLog(LAYOUT)
    for addr, nbytes, value in ops:
        log.record(addr, nbytes, np.full(nbytes, value, np.uint8))
    pages = [d.page for d in log.to_page_diffs()]
    assert pages == sorted(pages)
    assert all(0 <= p < SPAN // 512 for p in pages)
