"""Property tests: the batched plan path is equivalent to per-access ops.

An :class:`AccessPlan` is a *description* of accesses, never a change in
their meaning: for any random operation sequence, submitting one plan must
leave the thread in exactly the state that issuing each operation
individually would -- same cache contents and dirty ranges, same pending
diffs, same per-thread clock (bit-for-bit), same read results. Checked in
both functional mode (real data plane) and timing mode.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np

from repro.core.params import SamhitaConfig
from repro.runtime import Runtime
from repro.runtime.plan import AccessPlan

#: Spans four pages of the default 4 KiB layout, so sequences hit page
#: boundaries, multi-page accesses, and partial tail pages.
REGION = 3 * 4096 + 512

operations = st.lists(
    st.one_of(
        st.tuples(st.just("read"), st.integers(0, REGION - 1),
                  st.integers(1, 600)),
        st.tuples(st.just("write"), st.integers(0, REGION - 1),
                  st.integers(1, 600), st.integers(0, 255)),
        st.tuples(st.just("compute"), st.integers(1, 2000)),
    ),
    min_size=1, max_size=24,
)


def _payload(op, functional):
    """Deterministic write bytes for a ("write", off, n, fill) op."""
    if not functional:
        return None
    _, _, nbytes, fill = op
    return ((np.arange(nbytes) + fill) % 256).astype(np.uint8)


def _clamp(off, nbytes):
    return off, min(nbytes, REGION - off)


def _run(ops, functional, use_plan, config=None):
    """Execute the op sequence one way; return all observable state.

    ``config`` overrides the runtime configuration (it must keep
    ``functional`` consistent with the flag); the faults-off equivalence
    test reuses this to compare an armed-but-silent injector build against
    the injector-absent one.
    """
    rt = Runtime("samhita", n_threads=1,
                 config=config or SamhitaConfig(functional=functional))
    captured = {}

    def program(ctx):
        base = yield from ctx.malloc(REGION)
        if use_plan:
            plan = AccessPlan()
            for op in ops:
                if op[0] == "read":
                    off, n = _clamp(op[1], op[2])
                    plan.read(base + off, n)
                elif op[0] == "write":
                    off, n = _clamp(op[1], op[2])
                    plan.write(base + off, n, _payload(op, functional)[:n]
                               if functional else None)
                else:
                    plan.compute(op[1])
            results = yield from ctx.submit(plan)
        else:
            results = []
            for op in ops:
                if op[0] == "read":
                    off, n = _clamp(op[1], op[2])
                    results.append((yield from ctx.read(base + off, n)))
                elif op[0] == "write":
                    off, n = _clamp(op[1], op[2])
                    data = _payload(op, functional)
                    yield from ctx.write(base + off, n,
                                         data[:n] if functional else None)
                else:
                    yield from ctx.compute(op[1])
        captured["results"] = [
            None if r is None else bytes(r) for r in results]
        captured["base"] = base
        return 0

    rt.spawn(program)
    result = rt.run()

    backend = rt.backend
    assert backend.plans_supported, "plan path must actually engage"
    cache = backend.system.cache_of(0)
    dirty_pages = sorted(p for p, e in cache.entries.items() if e.is_dirty)
    diffs = []
    for page in dirty_pages:
        diff = cache.take_diff(page)
        spans = [(off, len(data) if data is not None else size,
                  None if data is None else bytes(data))
                 for (off, data), size in zip(diff.spans, diff._sizes)]
        diffs.append((diff.page, diff.payload_bytes, spans))
    clock = result.threads[0].clock
    return {
        "results": captured["results"],
        "resident": sorted(cache.entries),
        "diffs": diffs,
        "clock_compute": clock.compute,
        "clock_sync": clock.sync,
        "clock_detail": dict(clock.detail),
        "cache_counters": dict(cache.stats.counters),
        "elapsed": result.elapsed,
    }


@given(operations)
@settings(max_examples=50, deadline=None)
def test_plan_equivalent_functional(ops):
    plan_state = _run(ops, functional=True, use_plan=True)
    legacy_state = _run(ops, functional=True, use_plan=False)
    assert plan_state == legacy_state


@given(operations)
@settings(max_examples=50, deadline=None)
def test_plan_equivalent_timing(ops):
    plan_state = _run(ops, functional=False, use_plan=True)
    legacy_state = _run(ops, functional=False, use_plan=False)
    assert plan_state == legacy_state
