"""Chaos: Jacobi under fault schedules ends with bit-identical data.

Faults are allowed to change *timing* (elapsed simulated time, message
counts); they must never change *data*. Each case runs the functional
Jacobi kernel under a seeded fault schedule and asserts the final grid
hash and convergence value equal the fault-free run's, and that the
recovery protocol actually worked for a living (nonzero counters).
"""

import hashlib

import pytest

from repro.core.params import SamhitaConfig
from repro.experiments.harness import run_workload_direct
from repro.kernels.jacobi import JacobiParams, spawn_jacobi

from tests.chaos.conftest import chaos_profiles, chaos_seeds

pytestmark = pytest.mark.chaos

N_THREADS = 4
PARAMS = JacobiParams(rows=64, cols=256, iterations=3, collect_result=True)


def _run(config=None):
    result = run_workload_direct("samhita", N_THREADS, spawn_jacobi, PARAMS,
                                 functional=True, config=config)
    gdiff, grid = result.threads[0].value
    return gdiff, hashlib.sha256(grid.tobytes()).hexdigest(), result


@pytest.fixture(scope="module")
def baseline():
    gdiff, digest, result = _run()
    return gdiff, digest, result.elapsed


@pytest.mark.parametrize("seed", chaos_seeds())
@pytest.mark.parametrize("profile", ["drop_storm", "latency_storm",
                                     "server_outage"])
def test_jacobi_data_survives_faults(baseline, profile, seed):
    plan = chaos_profiles(seed)[profile]
    gdiff, digest, result = _run(SamhitaConfig(faults=plan))
    assert gdiff == baseline[0]
    assert digest == baseline[1]
    faults = result.stats["faults"]
    if profile == "latency_storm":
        assert faults.get("delay_spikes", 0) > 0
    else:
        # Loss-bearing profiles must exercise the retry protocol.
        assert faults.get("retries", 0) > 0
        assert faults.get("timeouts", 0) > 0
        assert faults.get("retransmits", 0) > 0
    if profile == "server_outage":
        assert faults.get("crash_drops", 0) > 0


@pytest.mark.parametrize("seed", chaos_seeds())
def test_jacobi_chaos_replays_bit_identically(seed):
    """Same plan, same seed: the whole faulty trajectory replays exactly."""
    plan = chaos_profiles(seed)["drop_storm"]
    first = _run(SamhitaConfig(faults=plan))
    second = _run(SamhitaConfig(faults=plan))
    assert first[:2] == second[:2]
    assert first[2].elapsed == second[2].elapsed
    assert first[2].stats["faults"] == second[2].stats["faults"]


def test_duplicate_deliveries_are_deduplicated(baseline):
    """A pure duplicate storm: every replay must be dropped by the
    sequence check, with the handlers executing exactly once."""
    from repro.faults import FaultPlan

    plan = FaultPlan(seed=5, duplicate_rate=0.05)
    gdiff, digest, result = _run(SamhitaConfig(faults=plan))
    assert (gdiff, digest) == baseline[:2]
    faults = result.stats["faults"]
    assert faults.get("dup_rpcs_dropped", 0) + \
        faults.get("dup_msgs_discarded", 0) > 0
