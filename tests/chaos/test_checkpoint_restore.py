"""Crash-consistent checkpoint/restart: lose ALL replicas, restore, replay.

The replication layer (PR 5) turns "one memory server died" into a
failover; losing the *last* replica of a page's ring is fatal by
construction -- there is nothing left to promote. With
``checkpoint_interval`` set, every Nth barrier round snapshots a
consistent cut of the machine into the durable checkpoint store, so the
operator's answer to total data loss becomes: build a fresh machine,
``restore()`` the latest checkpoint, re-spawn the program from the
checkpointed round, and replay to the end. The final bytes must be
bit-identical to an uninterrupted run -- the cut is taken at the barrier
quiesce point, so no half-applied round can leak into the snapshot.
"""

import numpy as np
import pytest

from repro.core.params import SamhitaConfig
from repro.core.system import SamhitaSystem
from repro.errors import ReplicationError, SimulationError
from repro.sim.engine import Timeout

pytestmark = pytest.mark.chaos

N_THREADS = 4
ELEMS_PER_THREAD = 1024           # 8192 B = 2 pages per thread slice
SLICE_BYTES = ELEMS_PER_THREAD * 8
NBYTES = N_THREADS * SLICE_BYTES  # 8 pages, striped across both servers
ROUNDS = 6
KILL_AFTER = 3                    # both replicas die after this round's barrier


def _config(checkpoint_interval=1) -> SamhitaConfig:
    return SamhitaConfig(n_memory_servers=2, replication_factor=2,
                         fencing=True, checkpoint_interval=checkpoint_interval)


def _build(config):
    system = SamhitaSystem.cluster(N_THREADS, config=config)
    tids = [system.add_thread() for _ in range(N_THREADS)]
    return system, tids


def _spawn_rounds(system, tids, state, start_round, end_round,
                  kill_after=None):
    """Register the campaign's threads: a barrier-synchronized slice update
    per round (``x = 1.25 x + (round+1)(thread+1)``), reading back the whole
    array at the end. ``kill_after`` kills BOTH memory servers right after
    that round's barrier -- the second declaration finds an empty ring."""
    bar = system.create_barrier(len(tids))

    def body(i, tid):
        if i == 0:
            state["addr"] = yield from system.malloc(tid, NBYTES, shared=True)
        yield from system.barrier_wait(tid, bar)
        addr = state["addr"] + i * SLICE_BYTES
        for r in range(start_round, end_round):
            data = yield from system.mem_read(tid, addr, SLICE_BYTES)
            arr = np.frombuffer(data, dtype=np.float64).copy()
            arr = arr * 1.25 + float((r + 1) * (i + 1))
            yield from system.mem_write(tid, addr, SLICE_BYTES,
                                        arr.view(np.uint8))
            yield from system.barrier_wait(tid, bar)
            if kill_after is not None and i == 0 and r == kill_after:
                yield Timeout(1e-6)
                system.handle_server_failure(0)
                system.handle_server_failure(1)
        if i == 0:
            state["final"] = bytes(
                (yield from system.mem_read(tid, state["addr"], NBYTES)))

    for i, tid in enumerate(tids):
        system.process(body(i, tid), name=f"t{i}")


def _reference_final() -> bytes:
    system, tids = _build(_config())
    state: dict = {}
    _spawn_rounds(system, tids, state, 0, ROUNDS)
    system.run()
    return state["final"]


@pytest.fixture(scope="module")
def reference_final():
    return _reference_final()


def test_last_replica_loss_recovers_via_checkpoint_restore(reference_final):
    # --- the doomed campaign: rounds 0..KILL_AFTER, then total data loss.
    system, tids = _build(_config())
    state: dict = {}
    _spawn_rounds(system, tids, state, 0, ROUNDS, kill_after=KILL_AFTER)
    with pytest.raises(SimulationError) as excinfo:
        system.run()
    # The engine surfaces the thread's death with the cause chained in.
    assert isinstance(excinfo.value.__cause__, ReplicationError)
    # The first declaration was an ordinary (fenced) failover; the second
    # found no live replica and took the machine down.
    report = system.stats_report()
    assert report["membership"]["promotions"] == 1
    assert report["membership"]["epoch"] == 1
    # One checkpoint per barrier generation: the publish barrier plus one
    # per completed round.
    assert report["membership"]["checkpoints_taken"] == KILL_AFTER + 2
    store = system.checkpoints
    ckpt = store.latest()
    assert ckpt is not None
    assert ckpt.page_count > 0
    assert ckpt.round == KILL_AFTER + 2
    # The cut predates the failover: its epoch is the pre-kill view.
    assert ckpt.epoch == 0

    # --- fresh machine, restore, replay the remaining rounds.
    system2, tids2 = _build(_config())
    system2.restore_checkpoint(ckpt)
    state2: dict = {}
    _spawn_rounds(system2, tids2, state2, KILL_AFTER + 1, ROUNDS)
    system2.run()
    # The deterministic bump allocator reproduced the original placement.
    assert state2["addr"] == state["addr"]
    assert state2["final"] == reference_final
    report2 = system2.stats_report()
    assert report2["membership"]["checkpoints_restored"] == 1


def test_checkpoint_interval_thins_the_snapshots(reference_final):
    """interval=2: half the barrier generations snapshot, and the final
    data is untouched by the checkpointing itself."""
    system, tids = _build(_config(checkpoint_interval=2))
    state: dict = {}
    _spawn_rounds(system, tids, state, 0, ROUNDS)
    system.run()
    assert state["final"] == reference_final
    taken = system.stats_report()["membership"]["checkpoints_taken"]
    assert taken == (ROUNDS + 1) // 2
    assert len(system.checkpoints) == taken


def test_restore_replay_is_deterministic(reference_final):
    """Two restores from the same checkpoint replay to the same bytes."""
    system, tids = _build(_config())
    state: dict = {}
    _spawn_rounds(system, tids, state, 0, KILL_AFTER + 1)
    system.run()
    ckpt = system.checkpoints.latest()

    def replay():
        sys2, tids2 = _build(_config(checkpoint_interval=0))
        sys2.restore_checkpoint(ckpt)
        st: dict = {}
        _spawn_rounds(sys2, tids2, st, KILL_AFTER + 1, ROUNDS)
        sys2.run()
        return st["final"]

    first = replay()
    assert first == replay()
    assert first == reference_final


def test_checkpointing_is_off_by_default():
    system, _tids = _build(SamhitaConfig(n_memory_servers=2,
                                         replication_factor=2))
    assert system.checkpoints is None
    assert system.membership is None
    assert "membership" not in system.stats_report()
