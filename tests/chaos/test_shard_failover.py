"""Chaos kill tests for the sharded control plane.

With ``manager_shards=2`` on a cluster machine, ``node0`` and ``node1``
are manager shards (memory servers shift to ``node2``/``node3``). Killing
``node1`` permanently mid-run must be survivable: the heartbeat detector
declares the shard dead, its lock/barrier/cond tables merge into the ring
successor (``node0``), blocked callers retry against the successor, and
the run finishes with mutual exclusion intact.

The kill instants sit inside a deliberately quiet compute window -- a
retried sync RPC that raced the crash into a *rolled barrier generation*
is a documented non-goal of the recovery protocol, so the schedule kills
between rounds, exactly how an operator would drain a shard.
"""

import pytest

from repro.core.params import SamhitaConfig
from repro.core.system import SamhitaSystem
from repro.faults import permanent_crash
from repro.sim.engine import Timeout

from tests.chaos.conftest import chaos_seeds

pytestmark = pytest.mark.chaos

N_THREADS = 4
#: Crash inside the quiet window between the two lock phases (phase 1
#: finishes within ~0.1 ms; phase 2 starts at 1 ms).
CRASH_AT = 3e-4
PHASE2_AT = 1e-3


def _sharded_replicated(faults=None) -> SamhitaConfig:
    return SamhitaConfig(manager_shards=2, n_memory_servers=2,
                         replication_factor=2, faults=faults)


def _build(config):
    system = SamhitaSystem.cluster(N_THREADS, config=config)
    tids = [system.add_thread() for _ in range(N_THREADS)]
    return system, tids


def _run_two_phase(system, tids):
    """Lock-protected increments on a shard-1 lock before and after the
    kill window; returns (state dict, stats report)."""
    locks = [system.create_lock(), system.create_lock()]
    # ID routing is id % 2: one of the two locks lives on shard 1.
    shard1_locks = [l for l in locks
                    if system.control.shard_index(l) == 1]
    assert shard1_locks, "expected a lock homed on shard 1"
    state = {"count": 0, "in_cr": 0, "max_in_cr": 0}

    def body(tid):
        for lock in locks:
            for _ in range(2):
                yield from system.acquire_lock(tid, lock)
                state["in_cr"] += 1
                state["max_in_cr"] = max(state["max_in_cr"], state["in_cr"])
                state["count"] += 1
                yield Timeout(1e-6)
                state["in_cr"] -= 1
                yield from system.release_lock(tid, lock)
        # Quiet window: the shard dies while nothing is in flight.
        yield Timeout(PHASE2_AT)
        for lock in locks:
            yield from system.acquire_lock(tid, lock)
            state["in_cr"] += 1
            state["max_in_cr"] = max(state["max_in_cr"], state["in_cr"])
            state["count"] += 1
            yield Timeout(1e-6)
            state["in_cr"] -= 1
            yield from system.release_lock(tid, lock)

    for i, tid in enumerate(tids):
        system.process(body(tid), name=f"t{i}")
    system.run()
    return state, system.stats_report()


@pytest.mark.parametrize("seed", chaos_seeds())
def test_lock_service_survives_shard_kill(seed):
    plan = permanent_crash(seed, "node1", at=CRASH_AT)
    system, tids = _build(_sharded_replicated(plan))
    state, report = _run_two_phase(system, tids)
    # Every critical section ran, one at a time, across the failover.
    assert state["count"] == N_THREADS * 6
    assert state["max_in_cr"] == 1
    # The failover actually happened (rather than the schedule missing).
    assert report["control_plane"].get("shard_failovers", 0) == 1
    rows = {r["shard"]: r for r in report["manager_rpcs_by_shard"]}
    assert rows[1]["dead"] is True
    assert rows[0]["dead"] is False
    assert report["replication"].get("shards_declared_dead", 0) >= 1
    assert report["faults"].get("crash_drops", 0) > 0
    # Post-failover traffic for shard-1 IDs lands on the successor.
    assert system.control.live_index(1) == 0


@pytest.mark.parametrize("seed", [chaos_seeds()[0]])
def test_shard_kill_replays_bit_identically(seed):
    """Same plan, same seed: the crash, detection, merge and retries all
    draw from deterministic streams, so the trajectory replays exactly."""
    def run():
        plan = permanent_crash(seed, "node1", at=CRASH_AT)
        system, tids = _build(_sharded_replicated(plan))
        state, report = _run_two_phase(system, tids)
        return state, system.engine.now, report["manager"], report["faults"]

    assert run() == run()


def test_healthy_sharded_replicated_run_does_not_fail_over():
    """No faults: two shards, two replicated homes, zero failovers and no
    false-positive shard deaths from the detector."""
    system, tids = _build(_sharded_replicated())
    state, report = _run_two_phase(system, tids)
    assert state["count"] == N_THREADS * 6
    assert report["control_plane"].get("shard_failovers", 0) == 0
    assert all(not r["dead"] for r in report["manager_rpcs_by_shard"])


def test_losing_both_shards_is_fatal():
    """The last live shard has no successor: failover must refuse rather
    than silently drop the sync state."""
    from repro.errors import ReplicationError

    system, _tids = _build(_sharded_replicated())
    system.control.handle_shard_failure(0)
    with pytest.raises(ReplicationError):
        system.control.handle_shard_failure(1)


def test_merged_state_preserves_barrier_generation():
    """A barrier homed on the dead shard keeps counting rounds on the
    successor."""
    system, tids = _build(_sharded_replicated())
    bar = system.create_barrier(N_THREADS)
    while system.control.shard_index(bar) != 1:
        bar = system.create_barrier(N_THREADS)

    def body(tid):
        yield from system.barrier_wait(tid, bar)
        if tid == tids[0]:
            system.control.handle_shard_failure(1)
        yield Timeout(1e-5)
        yield from system.barrier_wait(tid, bar)

    for i, tid in enumerate(tids):
        system.process(body(tid), name=f"t{i}")
    system.run()
    successor = system.managers[0]
    assert successor._barriers[bar].generation == 2
