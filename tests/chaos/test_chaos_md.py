"""Chaos: molecular dynamics under fault schedules keeps particle state.

The MD energy accumulator is mutex-ordered, so its float sum depends on
lock handoff order -- which faults legitimately perturb. The *particle
state* (positions and velocities) is block-partitioned per thread and
independent of timing, so that is what must survive every fault schedule
bit-for-bit (``MDParams.collect_state``).
"""

import hashlib

import pytest

from repro.core.params import SamhitaConfig
from repro.experiments.harness import run_workload_direct
from repro.kernels.md import MDParams, spawn_md

from tests.chaos.conftest import chaos_profiles, chaos_seeds

pytestmark = pytest.mark.chaos

N_THREADS = 4
PARAMS = MDParams(n_particles=48, steps=3, collect_energy=False,
                  collect_state=True)


def _run(config=None):
    result = run_workload_direct("samhita", N_THREADS, spawn_md, PARAMS,
                                 functional=True, config=config)
    _energies, pos, vel = result.threads[0].value
    digest = hashlib.sha256(pos.tobytes() + vel.tobytes()).hexdigest()
    return digest, result


@pytest.fixture(scope="module")
def baseline():
    digest, result = _run()
    return digest, result.elapsed


@pytest.mark.parametrize("seed", chaos_seeds())
@pytest.mark.parametrize("profile", ["drop_storm", "latency_storm",
                                     "server_outage"])
def test_md_particle_state_survives_faults(baseline, profile, seed):
    plan = chaos_profiles(seed)[profile]
    digest, result = _run(SamhitaConfig(faults=plan))
    assert digest == baseline[0]
    faults = result.stats["faults"]
    if profile == "latency_storm":
        assert faults.get("delay_spikes", 0) > 0
    else:
        assert faults.get("retries", 0) > 0
        assert faults.get("retransmits", 0) > 0
