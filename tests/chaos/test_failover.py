"""Chaos kill tests: lose a memory server permanently, finish anyway.

With ``replication_factor=2`` every page home has a backup holding the
acked prefix of its apply stream plus a durable WAL covering the rest, so
a permanent mid-campaign crash of one memory server must be survivable:
the heartbeat detector declares it dead, its backup is promoted, the WAL
tail replays, and every kernel's final data comes out bit-identical to a
fault-free run -- while the failover/WAL-replay/integrity-repair counters
prove the machinery actually ran rather than the schedule missing.
"""

import hashlib

import pytest

from repro.core.params import SamhitaConfig
from repro.experiments.harness import run_workload_direct
from repro.kernels.jacobi import JacobiParams, spawn_jacobi
from repro.kernels.md import MDParams, spawn_md

from tests.chaos.conftest import chaos_seeds, kill_plan

pytestmark = pytest.mark.chaos

N_THREADS = 4
JACOBI_PARAMS = JacobiParams(rows=64, cols=256, iterations=3,
                             collect_result=True)
MD_PARAMS = MDParams(n_particles=48, steps=3, collect_energy=False,
                     collect_state=True)
#: Crash instants chosen inside each kernel's run so the dead server still
#: holds unshipped (lazily recalled) WAL entries -- forcing a real replay,
#: not just a remap of an already-synchronized backup.
JACOBI_CRASH_AT = 4e-4
MD_CRASH_AT = 8.5e-5


def _replicated(faults=None) -> SamhitaConfig:
    return SamhitaConfig(n_memory_servers=2, replication_factor=2,
                         faults=faults)


def _run_jacobi(config):
    result = run_workload_direct("samhita", N_THREADS, spawn_jacobi,
                                 JACOBI_PARAMS, functional=True,
                                 config=config)
    gdiff, grid = result.threads[0].value
    return (gdiff, hashlib.sha256(grid.tobytes()).hexdigest()), result


def _run_md(config):
    result = run_workload_direct("samhita", N_THREADS, spawn_md, MD_PARAMS,
                                 functional=True, config=config)
    _energies, pos, vel = result.threads[0].value
    return hashlib.sha256(pos.tobytes() + vel.tobytes()).hexdigest(), result


@pytest.fixture(scope="module")
def jacobi_baseline():
    digest, result = _run_jacobi(_replicated())
    return digest, result.stats


@pytest.fixture(scope="module")
def md_baseline():
    digest, _result = _run_md(_replicated())
    return digest


def _assert_failover_ran(stats: dict) -> None:
    repl = stats["replication"]
    assert repl.get("failovers", 0) >= 1
    assert repl.get("servers_declared_dead", 0) >= 1
    assert repl.get("home_remaps", 0) >= 1
    assert repl.get("wal_replayed", 0) > 0
    assert repl.get("integrity_repairs", 0) > 0
    # A crash can interrupt a repair mid-flight (the retried fetch then
    # comes from the clean promoted server), so failures may exceed
    # repairs -- but never the reverse.
    assert repl.get("integrity_failures", 0) >= repl.get("integrity_repairs")
    assert stats["faults"].get("crash_drops", 0) > 0


@pytest.mark.parametrize("seed", chaos_seeds())
def test_jacobi_survives_permanent_server_loss(jacobi_baseline, seed):
    digest, result = _run_jacobi(
        _replicated(kill_plan(seed, at=JACOBI_CRASH_AT)))
    assert digest == jacobi_baseline[0]
    _assert_failover_ran(result.stats)


@pytest.mark.parametrize("seed", chaos_seeds())
def test_md_survives_permanent_server_loss(md_baseline, seed):
    digest, result = _run_md(_replicated(kill_plan(seed, at=MD_CRASH_AT)))
    assert digest == md_baseline
    _assert_failover_ran(result.stats)


def test_replication_itself_does_not_change_data(jacobi_baseline):
    """rf=2 with two homes produces the same answer as the plain rf=1
    single-home machine -- replication is pure redundancy."""
    digest, _result = _run_jacobi(SamhitaConfig())
    assert digest == jacobi_baseline[0]


def test_healthy_replicated_run_ships_and_acks(jacobi_baseline):
    """No faults: diffs still flow to backups through the WAL (shipped and
    acknowledged inline with the flush), and nothing fails over."""
    repl = jacobi_baseline[1]["replication"]
    assert repl.get("repl_ships", 0) > 0
    assert repl.get("replica_applies", 0) > 0
    assert repl.get("wal_appends", 0) > 0
    assert repl.get("repl_diffs", 0) == repl.get("wal_pruned", 0)
    assert repl.get("failovers", 0) == 0
    assert repl.get("pages_rotted", 0) == 0


@pytest.mark.parametrize("seed", [chaos_seeds()[0]])
def test_kill_schedule_replays_bit_identically(seed):
    """Same kill plan, same seed: crash, failover, repairs and all, the
    trajectory replays exactly (the WAL/bitrot machinery draws from
    deterministic streams)."""
    first = _run_jacobi(_replicated(kill_plan(seed, at=JACOBI_CRASH_AT)))
    second = _run_jacobi(_replicated(kill_plan(seed, at=JACOBI_CRASH_AT)))
    assert first[0] == second[0]
    assert first[1].elapsed == second[1].elapsed
    assert first[1].stats["replication"] == second[1].stats["replication"]
    assert first[1].stats["faults"] == second[1].stats["faults"]
