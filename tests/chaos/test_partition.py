"""Chaos partition tests: sever node groups, finish with identical data.

Three canonical cuts over the fenced cluster (``manager_shards=3``,
``replication_factor=2``, ``fencing=True`` -- node0-2 are manager shards,
node3/node4 memory servers, node5 the compute node):

* **Minority memory server** (node4): the quorum of shards agrees it is
  gone, promotes its backup under a fresh fencing epoch, and every
  compute-side write still stamped with the old epoch is fenced once,
  refreshed, and re-issued -- the acceptance matrix (Jacobi, MD) x seeds.
* **The compute node** (node5): nobody may be declared dead (the servers
  are fine, the *writer* is cut off), so the minority side degrades --
  read-only from cache, write-side retries parked on capped backoff --
  until the cut heals, then rejoins and finishes bit-identically.
* **Two of three shards** (node1+node2): the surviving shard cannot
  assemble a majority, so promotion is *denied* and the system waits out
  the cut instead of electing a second primary -- no split brain.
"""

import hashlib

import pytest

from repro.core.params import SamhitaConfig
from repro.core.system import SamhitaSystem
from repro.experiments.harness import run_workload_direct
from repro.faults import partition
from repro.kernels.jacobi import JacobiParams, spawn_jacobi
from repro.kernels.md import MDParams, spawn_md
from repro.sim.engine import Timeout

from tests.chaos.conftest import chaos_seeds

pytestmark = pytest.mark.chaos

N_THREADS = 4
JACOBI_PARAMS = JacobiParams(rows=64, cols=256, iterations=3,
                             collect_result=True)
MD_PARAMS = MDParams(n_particles=48, steps=3, collect_energy=False,
                     collect_state=True)
#: Cut instants chosen inside each kernel's run so the severed server
#: still owes writes -- forcing detection, quorum promotion and at least
#: one fenced stale-epoch write rather than the schedule missing.
JACOBI_CUT_AT = 4e-4
MD_CUT_AT = 8.5e-5
CUT_LEN = 3e-4


def _fenced(faults=None) -> SamhitaConfig:
    return SamhitaConfig(manager_shards=3, n_memory_servers=2,
                         replication_factor=2, fencing=True, faults=faults)


def _run_jacobi(config):
    result = run_workload_direct("samhita", N_THREADS, spawn_jacobi,
                                 JACOBI_PARAMS, functional=True,
                                 config=config)
    gdiff, grid = result.threads[0].value
    return (gdiff, hashlib.sha256(grid.tobytes()).hexdigest()), result


def _run_md(config):
    result = run_workload_direct("samhita", N_THREADS, spawn_md, MD_PARAMS,
                                 functional=True, config=config)
    _energies, pos, vel = result.threads[0].value
    return hashlib.sha256(pos.tobytes() + vel.tobytes()).hexdigest(), result


@pytest.fixture(scope="module")
def jacobi_baseline():
    digest, result = _run_jacobi(_fenced())
    return digest, result.stats


@pytest.fixture(scope="module")
def md_baseline():
    digest, _result = _run_md(_fenced())
    return digest


def _assert_fenced_failover_ran(stats: dict) -> None:
    member = stats["membership"]
    assert member.get("promotions", 0) >= 1
    assert member["epoch"] >= 1
    # At least one write arrived stamped with the pre-failover epoch and
    # was rejected by the promoted primary's fence ...
    assert member.get("stale_writes_fenced", 0) >= 1
    # ... after which the sender refreshed its view and re-issued.
    assert member.get("epoch_refreshes", 0) >= 1
    assert stats["replication"].get("failovers", 0) >= 1
    assert stats["faults"].get("partition_drops", 0) > 0


@pytest.mark.parametrize("seed", chaos_seeds())
def test_jacobi_survives_minority_server_partition(jacobi_baseline, seed):
    plan = partition(seed, ("node4",), start=JACOBI_CUT_AT, duration=CUT_LEN)
    digest, result = _run_jacobi(_fenced(plan))
    assert digest == jacobi_baseline[0]
    _assert_fenced_failover_ran(result.stats)


@pytest.mark.parametrize("seed", chaos_seeds())
def test_md_survives_minority_server_partition(md_baseline, seed):
    plan = partition(seed, ("node4",), start=MD_CUT_AT, duration=CUT_LEN)
    digest, result = _run_md(_fenced(plan))
    assert digest == md_baseline
    _assert_fenced_failover_ran(result.stats)


@pytest.mark.parametrize("seed", chaos_seeds())
def test_isolated_compute_node_degrades_then_rejoins(jacobi_baseline, seed):
    """Cut off the node all threads run on: nothing is promoted (the
    servers are healthy), the minority side parks on degraded-mode backoff
    until the heal, then rejoins and produces identical data."""
    plan = partition(seed, ("node5",), start=2e-4, duration=CUT_LEN)
    digest, result = _run_jacobi(_fenced(plan))
    assert digest == jacobi_baseline[0]
    member = result.stats["membership"]
    assert member.get("degraded_waits", 0) > 0
    assert member.get("promotions", 0) == 0
    assert member["epoch"] == 0
    assert result.stats["replication"].get("failovers", 0) == 0
    assert result.stats["faults"].get("partition_drops", 0) > 0


@pytest.mark.parametrize("seed", [chaos_seeds()[0]])
def test_partition_schedule_replays_bit_identically(seed):
    """Same cut, same seed: detection, quorum, fencing and the degraded
    backoffs all draw from deterministic streams."""
    def run():
        plan = partition(seed, ("node4",), start=JACOBI_CUT_AT,
                         duration=CUT_LEN)
        digest, result = _run_jacobi(_fenced(plan))
        return digest, result.elapsed, result.stats["membership"], \
            result.stats["faults"]

    assert run() == run()


def test_fencing_itself_does_not_change_data(jacobi_baseline):
    """The fenced three-shard replicated machine produces the same answer
    as the plain defaults machine -- fencing is pure bookkeeping."""
    digest, _result = _run_jacobi(SamhitaConfig())
    assert digest == jacobi_baseline[0]


def test_healthy_fenced_run_never_bumps_the_epoch(jacobi_baseline):
    member = jacobi_baseline[1]["membership"]
    assert member["epoch"] == 0
    assert member.get("promotions", 0) == 0
    assert member.get("stale_writes_fenced", 0) == 0
    assert member.get("quorum_denials", 0) == 0


# ----------------------------------------------------------------------
# Quorum denial: a minority of shards must not elect a primary.
# ----------------------------------------------------------------------

def _build_fenced(faults=None):
    system = SamhitaSystem.cluster(N_THREADS, config=_fenced(faults))
    tids = [system.add_thread() for _ in range(N_THREADS)]
    return system, tids


def _run_lock_traffic(system, tids, iterations=30):
    """Lock-protected increments against a shard-1 lock spanning the cut
    window; returns (state dict, stats report)."""
    locks = [system.create_lock() for _ in range(3)]
    lock = next(l for l in locks if system.control.shard_index(l) == 1)
    state = {"count": 0, "in_cr": 0, "max_in_cr": 0}

    def body(tid):
        for _ in range(iterations):
            yield from system.acquire_lock(tid, lock)
            state["in_cr"] += 1
            state["max_in_cr"] = max(state["max_in_cr"], state["in_cr"])
            state["count"] += 1
            yield Timeout(1e-6)
            state["in_cr"] -= 1
            yield from system.release_lock(tid, lock)
            yield Timeout(1.5e-5)

    for i, tid in enumerate(tids):
        system.process(body(tid), name=f"t{i}")
    system.run()
    return state, system.stats_report()


@pytest.mark.parametrize("seed", chaos_seeds())
def test_minority_shard_partition_is_quorum_denied(seed):
    """Sever two of three shards mid-traffic: the lone survivor cannot
    assemble a majority, so the detector's declaration is DENIED -- no
    shard fails over, callers wait out the cut, and mutual exclusion
    holds across the heal."""
    plan = partition(seed, ("node1", "node2"), start=2e-4, duration=CUT_LEN)
    system, tids = _build_fenced(plan)
    state, report = _run_lock_traffic(system, tids)
    assert state["count"] == N_THREADS * 30
    assert state["max_in_cr"] == 1
    member = report["membership"]
    assert member.get("quorum_denials", 0) >= 1
    assert member.get("promotions", 0) == 0
    assert member["epoch"] == 0
    assert report["control_plane"].get("shard_failovers", 0) == 0
    # No remap: shard 1 still answers for its own IDs after the heal.
    assert system.control.live_index(1) == 1
    assert report["faults"].get("partition_drops", 0) > 0
