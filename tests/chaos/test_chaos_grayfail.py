"""Chaos: gray failures (slow servers, jitter storms) under the grayfail
deployment keep data bit-identical while the resilience machinery works.

A gray failure changes *timing only*: a 10x-slow memory server or a
Pareto-tailed jitter storm must never change final bytes. On top of data
identity these cases assert the machinery actually ran -- Jacobi's
neighbor reads produce owner-free bulk trips that hedge to the backup
replica and shed under admission control until breakers open; MD is
ownership-dominated (each thread writes its own particle block), so its
trips are pinned to the true home and its resilience comes from
admission control and shed backoff alone (hedges are a read-side
mechanism; see DESIGN.md section 15)."""

import hashlib

import pytest

from repro.core.params import SamhitaConfig
from repro.experiments.harness import run_workload_direct
from repro.faults import jitter_storm, slow_server
from repro.kernels.jacobi import JacobiParams, spawn_jacobi
from repro.kernels.md import MDParams, spawn_md

from tests.chaos.conftest import chaos_seeds

pytestmark = pytest.mark.chaos

N_THREADS = 4
JACOBI = JacobiParams(rows=64, cols=256, iterations=6, collect_result=True)
MD = MDParams(n_particles=48, steps=3, collect_energy=False,
              collect_state=True)


def grayfail_profiles(seed: int) -> dict:
    """The two gray-failure schedules of the acceptance matrix: one
    memory server serving 10x slow for the whole run, and heavy-tailed
    latency jitter on every component."""
    return {
        "slow_server": slow_server(seed, "node1", factor=10.0,
                                   start=2e-4, duration=1.0),
        "jitter_storm": jitter_storm(seed),
    }


def _run_jacobi(config=None):
    result = run_workload_direct("samhita", N_THREADS, spawn_jacobi,
                                 JACOBI, functional=True, config=config)
    gdiff, grid = result.threads[0].value
    return gdiff, hashlib.sha256(grid.tobytes()).hexdigest(), result


def _run_md(config=None):
    result = run_workload_direct("samhita", N_THREADS, spawn_md, MD,
                                 functional=True, config=config)
    _energies, pos, vel = result.threads[0].value
    return hashlib.sha256(pos.tobytes() + vel.tobytes()).hexdigest(), result


@pytest.fixture(scope="module")
def jacobi_baseline():
    gdiff, digest, result = _run_jacobi(SamhitaConfig.grayfail())
    return gdiff, digest, result.elapsed


@pytest.fixture(scope="module")
def md_baseline():
    digest, result = _run_md(SamhitaConfig.grayfail())
    return digest, result.elapsed


@pytest.mark.parametrize("seed", chaos_seeds())
@pytest.mark.parametrize("profile", ["slow_server", "jitter_storm"])
def test_jacobi_survives_gray_failures(jacobi_baseline, profile, seed):
    plan = grayfail_profiles(seed)[profile]
    gdiff, digest, result = _run_jacobi(SamhitaConfig.grayfail(faults=plan))
    assert gdiff == jacobi_baseline[0]
    assert digest == jacobi_baseline[1]
    hedges = result.stats["hedges"]
    assert hedges.get("hedges_issued", 0) > 0
    assert hedges.get("sheds", 0) > 0
    if profile == "slow_server":
        # The acceptance counters: hedges won against the slow primary,
        # breakers opened once the shed budget ran dry, and the storm
        # cost at most 2x the fault-free elapsed time.
        assert hedges.get("hedges_won", 0) > 0
        assert hedges.get("breaker_opens", 0) > 0
        assert result.elapsed <= 2.0 * jacobi_baseline[2]
    else:
        assert result.stats["faults"].get("jitter_stalls", 0) > 0


@pytest.mark.parametrize("seed", chaos_seeds())
@pytest.mark.parametrize("profile", ["slow_server", "jitter_storm"])
def test_md_survives_gray_failures(md_baseline, profile, seed):
    plan = grayfail_profiles(seed)[profile]
    digest, result = _run_md(SamhitaConfig.grayfail(faults=plan))
    assert digest == md_baseline[0]
    hedges = result.stats["hedges"]
    assert hedges.get("sheds", 0) > 0
    if profile == "jitter_storm":
        assert result.stats["faults"].get("jitter_stalls", 0) > 0


@pytest.mark.parametrize("seed", chaos_seeds())
def test_gray_failures_replay_bit_identically(seed):
    """Same plan, same seed: the whole gray trajectory replays exactly,
    hedge races and all."""
    plan = grayfail_profiles(seed)["slow_server"]
    first = _run_jacobi(SamhitaConfig.grayfail(faults=plan))
    second = _run_jacobi(SamhitaConfig.grayfail(faults=plan))
    assert first[:2] == second[:2]
    assert first[2].elapsed == second[2].elapsed
    assert first[2].stats["hedges"] == second[2].stats["hedges"]


def test_unhedged_storm_keeps_data_identical(jacobi_baseline):
    """Hedging off under the same storm: slower tail, same bytes."""
    plan = grayfail_profiles(11)["slow_server"]
    gdiff, digest, _result = _run_jacobi(
        SamhitaConfig.grayfail(faults=plan, hedged_fetches=False))
    assert (gdiff, digest) == jacobi_baseline[:2]
