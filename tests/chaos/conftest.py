"""Shared plumbing for the chaos suite.

Seeds come from ``REPRO_CHAOS_SEEDS`` (comma-separated) so CI can run the
matrix one seed per job; the default trio covers all three canonical
profiles per seed. ``chaos_profiles(seed)`` sizes the server crash window
for the suite's small functional runs (~1.4 ms of simulated time), aimed at
``node1`` -- the memory-server node of every 4-thread cluster machine.
"""

from __future__ import annotations

import os

from repro.faults import drop_storm, latency_storm, permanent_crash, server_outage

DEFAULT_SEEDS = (11, 23, 47)


def chaos_seeds() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_CHAOS_SEEDS", "")
    if not raw:
        return DEFAULT_SEEDS
    return tuple(int(s) for s in raw.split(",") if s.strip())


def chaos_profiles(seed: int) -> dict:
    """The canonical fault schedules the acceptance gate requires: random
    drop, latency spikes, and a memory-server crash-restart window."""
    return {
        "drop_storm": drop_storm(seed),
        "latency_storm": latency_storm(seed),
        "server_outage": server_outage(seed, "node1",
                                       start=2e-4, duration=3e-4),
    }


def kill_plan(seed: int, at: float, bitrot_rate: float = 0.05):
    """The replication kill-test schedule: ``node1`` (always a memory
    server on cluster machines) crashes permanently at ``at`` and never
    restarts, with enough bitrot sprinkled on served pages that every seed
    exercises the checksum-repair path too."""
    return permanent_crash(seed, "node1", at=at, bitrot_rate=bitrot_rate)
