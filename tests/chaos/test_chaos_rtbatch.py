"""Chaos: the batched round-trip layer under fault schedules.

The per-home batch daemon changes the protocol's message shape (one
modeled round trip carries many lines), so its retry/dedup path is a new
surface the generic chaos cells don't pin down explicitly. These cells
run the canonical drop/latency schedules with ``batched_round_trips``
explicitly on and assert:

* final data is bit-identical to the fault-free run (both shapes);
* the faulty batched run still aggregates (a live ``round_trips``
  ledger with multi-line trips), i.e. faults didn't silently degrade
  the daemon to per-page trips;
* the retry counters prove the loss-bearing schedules actually hit the
  batched protocol;
* a pure duplicate storm is fully deduplicated with batching on.
"""

import hashlib

import pytest

from repro.core.params import SamhitaConfig
from repro.experiments.harness import run_workload_direct
from repro.kernels.jacobi import JacobiParams, spawn_jacobi

from tests.chaos.conftest import chaos_profiles, chaos_seeds

pytestmark = pytest.mark.chaos

N_THREADS = 4
PARAMS = JacobiParams(rows=64, cols=256, iterations=3, collect_result=True)


def _run(batched: bool, plan=None):
    config = SamhitaConfig(batched_round_trips=batched, faults=plan)
    result = run_workload_direct("samhita", N_THREADS, spawn_jacobi, PARAMS,
                                 functional=True, config=config)
    gdiff, grid = result.threads[0].value
    return gdiff, hashlib.sha256(grid.tobytes()).hexdigest(), result


@pytest.fixture(scope="module")
def baseline():
    """Fault-free batched run: the data every faulty cell must reproduce."""
    gdiff, digest, result = _run(batched=True)
    return gdiff, digest, result


@pytest.mark.parametrize("seed", chaos_seeds())
@pytest.mark.parametrize("profile", ["drop_storm", "latency_storm"])
def test_batched_data_survives_faults(baseline, profile, seed):
    plan = chaos_profiles(seed)[profile]
    gdiff, digest, result = _run(batched=True, plan=plan)
    assert (gdiff, digest) == baseline[:2]

    faults = result.stats["faults"]
    if profile == "drop_storm":
        # Lost batch requests/replies must go through the retry protocol.
        assert faults.get("retries", 0) > 0
        assert faults.get("timeouts", 0) > 0
        assert faults.get("retransmits", 0) > 0
    else:
        assert faults.get("delay_spikes", 0) > 0

    # Faults may shrink batches (retried lines re-fetch) but must not
    # silently disable aggregation: trips still carry >1 line on average.
    rt = result.stats["round_trips"]
    assert rt["trips"] > 0
    assert rt["lines"] > rt["trips"]


@pytest.mark.parametrize("seed", chaos_seeds())
@pytest.mark.parametrize("profile", ["drop_storm", "latency_storm"])
def test_batched_matches_unbatched_under_faults(profile, seed):
    """Same fault schedule, both protocol shapes: identical final bytes.
    (Timing diverges -- the schedules perturb different message streams.)"""
    plan = chaos_profiles(seed)[profile]
    on = _run(batched=True, plan=plan)
    off = _run(batched=False, plan=plan)
    assert on[:2] == off[:2]


@pytest.mark.parametrize("seed", chaos_seeds())
def test_batched_chaos_replays_bit_identically(seed):
    """Determinism under faults survives batching: the whole faulty
    trajectory (data, modeled time, fault counters) replays exactly."""
    plan = chaos_profiles(seed)["drop_storm"]
    first = _run(batched=True, plan=plan)
    second = _run(batched=True, plan=plan)
    assert first[:2] == second[:2]
    assert first[2].elapsed == second[2].elapsed
    assert first[2].stats["faults"] == second[2].stats["faults"]
    assert first[2].stats["round_trips"] == second[2].stats["round_trips"]


def test_batched_duplicate_storm_deduplicated(baseline):
    """Replayed batch messages must be dropped by the sequence check --
    a double-applied batch would install pages or merge diffs twice."""
    from repro.faults import FaultPlan

    plan = FaultPlan(seed=5, duplicate_rate=0.05)
    gdiff, digest, result = _run(batched=True, plan=plan)
    assert (gdiff, digest) == baseline[:2]
    faults = result.stats["faults"]
    assert faults.get("dup_rpcs_dropped", 0) + \
        faults.get("dup_msgs_discarded", 0) > 0
