"""Unit tests for the discrete-event engine core."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import AllOf, AnyOf, Engine, Timeout


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_run_empty_engine_returns_zero():
    assert Engine().run() == 0.0


def test_timeout_advances_clock():
    eng = Engine()
    seen = []

    def proc():
        yield Timeout(1.5)
        seen.append(eng.now)
        yield Timeout(0.5)
        seen.append(eng.now)

    eng.process(proc(), name="t")
    eng.run()
    assert seen == [1.5, 2.0]


def test_timeout_zero_is_allowed():
    eng = Engine()

    def proc():
        yield Timeout(0.0)
        return "ok"

    p = eng.process(proc())
    eng.run()
    assert p.done_event.value == "ok"


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-1.0)


def test_timeout_carries_value():
    eng = Engine()
    got = []

    def proc():
        got.append((yield Timeout(1.0, value="payload")))

    eng.process(proc())
    eng.run()
    assert got == ["payload"]


def test_equal_time_events_run_in_schedule_order():
    eng = Engine()
    order = []
    for label in "abc":
        eng.schedule(1.0, lambda label=label: order.append(label))
    eng.run()
    assert order == ["a", "b", "c"]


def test_schedule_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(-0.1, lambda: None)


def test_run_until_stops_early():
    eng = Engine()
    fired = []
    eng.schedule(5.0, lambda: fired.append(True))
    assert eng.run(until=2.0) == 2.0
    assert not fired
    eng.run()
    assert fired


def test_process_return_value_via_join():
    eng = Engine()

    def child():
        yield Timeout(1.0)
        return 42

    def parent():
        value = yield eng.process(child(), name="child")
        return value + 1

    p = eng.process(parent(), name="parent")
    eng.run()
    assert p.done_event.value == 43


def test_join_already_finished_process():
    eng = Engine()

    def child():
        return 7
        yield  # pragma: no cover

    def parent():
        c = eng.process(child(), name="child")
        yield Timeout(10.0)
        value = yield c
        return value

    p = eng.process(parent(), name="parent")
    eng.run()
    assert p.done_event.value == 7


def test_event_succeed_wakes_waiter_with_value():
    eng = Engine()
    ev = eng.event("e")
    got = []

    def waiter():
        got.append((yield ev))

    eng.process(waiter())
    eng.schedule(3.0, lambda: ev.succeed("hello"))
    eng.run()
    assert got == ["hello"]


def test_event_fail_raises_in_waiter():
    eng = Engine()
    ev = eng.event("e")

    def waiter():
        with pytest.raises(ValueError):
            yield ev
        return "handled"

    p = eng.process(waiter())
    eng.schedule(1.0, lambda: ev.fail(ValueError("boom")))
    eng.run()
    assert p.done_event.value == "handled"


def test_event_double_trigger_rejected():
    eng = Engine()
    ev = eng.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))


def test_event_value_before_trigger_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        _ = eng.event().value


def test_timeout_event_helper():
    eng = Engine()
    ev = eng.timeout_event(2.0, value="v")
    got = []

    def waiter():
        got.append((yield ev))
        got.append(eng.now)

    eng.process(waiter())
    eng.run()
    assert got == ["v", 2.0]


def test_unhandled_process_exception_aborts_run():
    eng = Engine()

    def bad():
        yield Timeout(1.0)
        raise RuntimeError("kaboom")

    eng.process(bad(), name="bad")
    with pytest.raises(SimulationError, match="bad"):
        eng.run()


def test_yielding_garbage_raises_in_process():
    eng = Engine()

    def bad():
        with pytest.raises(SimulationError):
            yield 12345
        return "caught"

    p = eng.process(bad())
    eng.run()
    assert p.done_event.value == "caught"


def test_deadlock_detection():
    eng = Engine()

    def stuck():
        yield eng.event("never")

    eng.process(stuck(), name="stuck")
    with pytest.raises(DeadlockError) as exc:
        eng.run()
    assert "stuck" in str(exc.value)


def test_daemon_processes_do_not_deadlock():
    eng = Engine()

    def server():
        yield eng.event("never")

    eng.process(server(), name="srv", daemon=True)
    assert eng.run() == 0.0


def test_allof_collects_values_in_child_order():
    eng = Engine()
    e1, e2 = eng.timeout_event(2.0, "b"), eng.timeout_event(1.0, "a")
    got = []

    def waiter():
        got.append((yield AllOf(eng, [e1, e2])))
        got.append(eng.now)

    eng.process(waiter())
    eng.run()
    assert got == [["b", "a"], 2.0]


def test_allof_empty_triggers_immediately():
    eng = Engine()
    combined = AllOf(eng, [])
    assert combined.triggered and combined.value == []


def test_anyof_returns_first_index_and_value():
    eng = Engine()
    e1, e2 = eng.timeout_event(5.0, "slow"), eng.timeout_event(1.0, "fast")
    got = []

    def waiter():
        got.append((yield AnyOf(eng, [e1, e2])))
        got.append(eng.now)

    eng.process(waiter())
    eng.run()
    assert got == [(1, "fast"), 1.0]


def test_anyof_empty_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        AnyOf(eng, [])


def test_allof_propagates_failure():
    eng = Engine()
    ok = eng.timeout_event(1.0)
    bad = eng.event("bad")
    eng.schedule(0.5, lambda: bad.fail(KeyError("nope")))

    def waiter():
        with pytest.raises(KeyError):
            yield AllOf(eng, [ok, bad])
        return "done"

    p = eng.process(waiter())
    eng.run()
    assert p.done_event.value == "done"


def test_many_processes_interleave_deterministically():
    eng = Engine()
    log = []

    def worker(i):
        for step in range(3):
            yield Timeout(1.0)
            log.append((eng.now, i, step))

    for i in range(4):
        eng.process(worker(i), name=f"w{i}")
    eng.run()
    # At each integer time, workers fire in spawn order.
    expected = [(float(t), i, t - 1) for t in (1, 2, 3) for i in range(4)]
    assert log == expected


def test_process_requires_generator():
    eng = Engine()
    with pytest.raises(TypeError):
        eng.process(lambda: None)  # type: ignore[arg-type]


def test_live_processes_listing():
    eng = Engine()

    def proc():
        yield Timeout(1.0)

    eng.process(proc(), name="p")
    assert len(eng.live_processes) == 1
    eng.run()
    assert eng.live_processes == []
