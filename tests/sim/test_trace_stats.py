"""Tests for the tracer and the StatSet accumulator."""

from repro.sim import StatSet, Tracer


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.emit(1.0, "cache", "miss", page=3)
        assert tr.records == []

    def test_enabled_tracer_records(self):
        tr = Tracer(enabled=True)
        tr.emit(1.0, "cache", "miss", page=3)
        tr.emit(2.0, "cache", "hit", page=3)
        assert len(tr.records) == 2
        assert tr.records[0].payload == {"page": 3}

    def test_filter_by_category_and_component(self):
        tr = Tracer(enabled=True)
        tr.emit(1.0, "cache0", "miss")
        tr.emit(2.0, "cache1", "miss")
        tr.emit(3.0, "cache0", "hit")
        assert tr.count(category="miss") == 2
        assert tr.count(component="cache0") == 2
        assert tr.count(category="miss", component="cache1") == 1

    def test_filter_predicate(self):
        tr = Tracer(enabled=True)
        for t in range(5):
            tr.emit(float(t), "x", "tick")
        assert len(tr.filter(predicate=lambda r: r.time >= 3.0)) == 2

    def test_limit_drops_excess(self):
        tr = Tracer(enabled=True, limit=2)
        for t in range(5):
            tr.emit(float(t), "x", "tick")
        assert len(tr.records) == 2
        assert tr.dropped == 3

    def test_clear(self):
        tr = Tracer(enabled=True)
        tr.emit(0.0, "x", "tick")
        tr.clear()
        assert tr.records == [] and tr.dropped == 0


class TestStatSet:
    def test_incr_and_add(self):
        s = StatSet("s")
        s.incr("misses")
        s.incr("misses", 4)
        s.add("bytes", 1.5)
        assert s.get("misses") == 5
        assert s.get("bytes") == 1.5
        assert s.get("absent") == 0.0

    def test_merge_combines_both_kinds(self):
        a, b = StatSet("a"), StatSet("b")
        a.incr("n", 1)
        a.add("t", 0.5)
        b.incr("n", 2)
        b.add("t", 1.5)
        b.incr("only_b")
        a.merge(b)
        assert a.get("n") == 3
        assert a.get("t") == 2.0
        assert a.get("only_b") == 1

    def test_snapshot_is_plain_dict(self):
        s = StatSet()
        s.incr("n", 2)
        s.add("t", 3.0)
        snap = s.snapshot()
        assert snap == {"n": 2, "t": 3.0}
        snap["n"] = 99
        assert s.get("n") == 2

    def test_reset(self):
        s = StatSet()
        s.incr("n")
        s.add("t", 1.0)
        s.reset()
        assert s.snapshot() == {}
