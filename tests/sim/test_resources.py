"""Tests for engine-level mutex / semaphore / condition / barrier / resource."""

import pytest

from repro.errors import SimulationError, SynchronizationError
from repro.sim import Engine, FIFOStore, Resource, SimBarrier, SimCondition, SimMutex, SimSemaphore, Timeout


def run_all(eng, gens, names=None):
    procs = [eng.process(g, name=(names[i] if names else f"p{i}")) for i, g in enumerate(gens)]
    eng.run()
    return procs


class TestMutex:
    def test_uncontended_acquire_release(self):
        eng = Engine()
        m = SimMutex(eng)

        def proc():
            me = object()
            yield from m.acquire(me)
            assert m.locked and m.owner is me
            m.release(me)
            assert not m.locked

        run_all(eng, [proc()])
        assert m.acquisitions == 1
        assert m.contended_acquisitions == 0

    def test_mutual_exclusion_and_fifo_order(self):
        eng = Engine()
        m = SimMutex(eng)
        log = []

        def proc(i):
            yield Timeout(0.0)
            yield from m.acquire(i)
            log.append(("in", i, eng.now))
            yield Timeout(1.0)
            log.append(("out", i, eng.now))
            m.release(i)

        run_all(eng, [proc(i) for i in range(3)])
        # Critical sections must not overlap and must be FIFO.
        assert log == [
            ("in", 0, 0.0), ("out", 0, 1.0),
            ("in", 1, 1.0), ("out", 1, 2.0),
            ("in", 2, 2.0), ("out", 2, 3.0),
        ]
        assert m.contended_acquisitions == 2

    def test_release_unheld_raises(self):
        eng = Engine()
        m = SimMutex(eng)
        with pytest.raises(SynchronizationError):
            m.release()

    def test_release_by_non_owner_raises(self):
        eng = Engine()
        m = SimMutex(eng)

        def proc():
            yield from m.acquire("a")
            with pytest.raises(SynchronizationError):
                m.release("b")
            m.release("a")

        run_all(eng, [proc()])


class TestSemaphore:
    def test_counts_down_then_blocks(self):
        eng = Engine()
        sem = SimSemaphore(eng, 2)
        log = []

        def proc(i):
            yield from sem.acquire()
            log.append(("in", i, eng.now))
            yield Timeout(1.0)
            sem.release()

        run_all(eng, [proc(i) for i in range(3)])
        times = [t for (_, _, t) in log]
        assert times == [0.0, 0.0, 1.0]

    def test_negative_initial_value_rejected(self):
        with pytest.raises(SimulationError):
            SimSemaphore(Engine(), -1)

    def test_release_without_waiter_increments(self):
        eng = Engine()
        sem = SimSemaphore(eng, 0)
        sem.release()
        assert sem.value == 1


class TestCondition:
    def test_wait_notify_roundtrip(self):
        eng = Engine()
        m = SimMutex(eng)
        cond = SimCondition(eng, m)
        state = {"ready": False}
        log = []

        def consumer():
            yield from m.acquire("c")
            while not state["ready"]:
                yield from cond.wait("c")
            log.append(("consumed", eng.now))
            m.release("c")

        def producer():
            yield Timeout(5.0)
            yield from m.acquire("p")
            state["ready"] = True
            cond.notify()
            m.release("p")

        run_all(eng, [consumer(), producer()])
        assert log == [("consumed", 5.0)]

    def test_wait_without_mutex_raises(self):
        eng = Engine()
        m = SimMutex(eng)
        cond = SimCondition(eng, m)

        def proc():
            with pytest.raises(SynchronizationError):
                yield from cond.wait("me")

        run_all(eng, [proc()])

    def test_notify_all_wakes_everyone(self):
        eng = Engine()
        m = SimMutex(eng)
        cond = SimCondition(eng, m)
        woke = []

        def waiter(i):
            yield from m.acquire(i)
            yield from cond.wait(i)
            woke.append(i)
            m.release(i)

        def waker():
            yield Timeout(1.0)
            yield from m.acquire("w")
            cond.notify_all()
            m.release("w")

        run_all(eng, [waiter(0), waiter(1), waiter(2), waker()])
        assert sorted(woke) == [0, 1, 2]


class TestBarrier:
    def test_all_parties_released_together(self):
        eng = Engine()
        bar = SimBarrier(eng, 3)
        released = []

        def proc(i):
            yield Timeout(float(i))
            yield from bar.wait()
            released.append((i, eng.now))

        run_all(eng, [proc(i) for i in range(3)])
        assert all(t == 2.0 for _, t in released)

    def test_barrier_is_reusable(self):
        eng = Engine()
        bar = SimBarrier(eng, 2)
        log = []

        def proc(i):
            for r in range(3):
                yield Timeout(1.0 + i)
                yield from bar.wait()
                log.append((r, i, eng.now))

        run_all(eng, [proc(0), proc(1)])
        rounds = {r for (r, _, _) in log}
        assert rounds == {0, 1, 2}
        # Within a round both parties release at the same (later) arrival time.
        for r in range(3):
            times = {t for (rr, _, t) in log if rr == r}
            assert len(times) == 1

    def test_wait_returns_arrival_index(self):
        eng = Engine()
        bar = SimBarrier(eng, 2)
        got = {}

        def proc(i):
            yield Timeout(float(i))
            got[i] = yield from bar.wait()

        run_all(eng, [proc(0), proc(1)])
        assert got == {0: 0, 1: 1}

    def test_zero_parties_rejected(self):
        with pytest.raises(SimulationError):
            SimBarrier(Engine(), 0)


class TestResource:
    def test_queueing_delay_measured(self):
        eng = Engine()
        res = Resource(eng, capacity=1, name="server")

        def client(i):
            yield Timeout(0.0)
            yield from res.use(2.0)

        run_all(eng, [client(i) for i in range(3)])
        assert eng.now == 6.0
        assert res.total_requests == 3
        assert res.total_busy_time == pytest.approx(6.0)
        # Second waits 2s, third waits 4s.
        assert res.total_queue_time == pytest.approx(6.0)

    def test_capacity_two_halves_makespan(self):
        eng = Engine()
        res = Resource(eng, capacity=2)

        def client():
            yield from res.use(2.0)

        run_all(eng, [client() for _ in range(4)])
        assert eng.now == 4.0

    def test_release_without_request_raises(self):
        with pytest.raises(SimulationError):
            Resource(Engine()).release()

    def test_bad_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Resource(Engine(), capacity=0)


class TestFIFOStore:
    def test_put_then_get(self):
        eng = Engine()
        store = FIFOStore(eng)
        store.put("a")
        store.put("b")
        got = []

        def consumer():
            got.append((yield from store.get()))
            got.append((yield from store.get()))

        run_all(eng, [consumer()])
        assert got == ["a", "b"]

    def test_get_blocks_until_put(self):
        eng = Engine()
        store = FIFOStore(eng)
        got = []

        def consumer():
            got.append((yield from store.get()))
            got.append(eng.now)

        def producer():
            yield Timeout(3.0)
            store.put("late")

        run_all(eng, [consumer(), producer()])
        assert got == ["late", 3.0]

    def test_depth_statistics(self):
        eng = Engine()
        store = FIFOStore(eng)
        for i in range(5):
            store.put(i)
        assert store.max_depth == 5
        assert len(store) == 5
