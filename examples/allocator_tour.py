#!/usr/bin/env python
"""Tour of Samhita's three-strategy memory allocator (§II).

Shows where allocations of different sizes land (thread arena, shared zone,
striped across memory servers), what each strategy costs in manager traffic,
and why the arena strategy eliminates inter-thread false sharing for
"local" allocation patterns.

Run:  python examples/allocator_tour.py
"""

from repro.core import SamhitaConfig, SamhitaSystem
from repro.core.allocator import AllocationKind


def main():
    config = SamhitaConfig(n_memory_servers=3, functional=False)
    system = SamhitaSystem.cluster(n_threads=2, config=config)
    t0 = system.add_thread()
    t1 = system.add_thread()
    layout = config.layout

    def describe(addr, label):
        alloc = system.allocator.allocation_at(addr)
        pages = layout.pages_spanning(addr, alloc.size)
        homes = sorted({system.allocator.home_of_page(p) for p in pages})
        print(f"  {label:28s} addr={addr:#10x} kind={alloc.kind.value:12s} "
              f"pages={len(pages):5d} memory-servers={homes}")
        return alloc

    def program():
        print("Thread 0 allocates:")
        rpc_before = system.manager.stats.get("allocs")
        a = yield from system.malloc(t0, 1 << 10)       # 1 KiB
        b = yield from system.malloc(t0, 16 << 10)      # 16 KiB
        rpcs_small = system.manager.stats.get("allocs") - rpc_before
        a1 = describe(a, "1 KiB (arena)")
        describe(b, "16 KiB (arena)")
        print(f"  -> {rpcs_small} manager RPC total: one refill buys the whole arena chunk")

        c = yield from system.malloc(t0, 256 << 10)     # 256 KiB
        describe(c, "256 KiB (shared zone)")
        d = yield from system.malloc(t0, 8 << 20)       # 8 MiB
        d1 = describe(d, "8 MiB (striped)")
        assert d1.kind is AllocationKind.STRIPED

        print("\nThread 1 allocates from its own arena:")
        e = yield from system.malloc(t1, 1 << 10)
        describe(e, "1 KiB (arena, thread 1)")
        p0 = layout.page_of(a)
        p1 = layout.page_of(e)
        print(f"\n  thread 0's and thread 1's small allocations live on pages "
              f"{p0} and {p1}:")
        print("  different pages -> no inter-thread false sharing for local "
              "allocation,")
        print("  exactly the guarantee the micro-benchmark's 'local' mode "
              "relies on.")
        assert p0 != p1
        assert a1.kind is AllocationKind.ARENA

    system.process(program(), name="tour")
    system.run()

    stats = system.allocator.stats
    print(f"\nAllocator counters: {dict(stats.counters)}")


if __name__ == "__main__":
    main()
