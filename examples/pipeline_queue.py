#!/usr/bin/env python
"""A bounded producer/consumer queue over virtual shared memory.

The canonical Pthreads pattern -- ring buffer + mutex + two condition
variables -- running unchanged on the DSM. Under RegC every control-word
update is a consistency-region store, so it propagates as a few bytes of
fine-grained updates at each unlock rather than as whole-page traffic.

Run:  python examples/pipeline_queue.py
"""

from repro.kernels import PipelineParams, spawn_pipeline
from repro.runtime import Runtime

PARAMS = PipelineParams(items=48, capacity=4, producers=1, work_per_item=2000)


def main():
    print(f"Pipeline: {PARAMS.items} items through a {PARAMS.capacity}-slot "
          f"ring buffer\n")
    for backend, threads in (("pthreads", 4), ("samhita", 4)):
        rt = Runtime(backend, n_threads=threads)
        spawn_pipeline(rt, PARAMS)
        result = rt.run()
        produced = result.value_of(0)
        consumed = sorted(x for t in range(1, threads)
                          for x in result.value_of(t))
        per_consumer = [len(result.value_of(t)) for t in range(1, threads)]
        assert consumed == list(range(PARAMS.items)), "items lost or duplicated"
        print(f"[{backend:8s}] produced={produced} consumed={len(consumed)} "
              f"split={per_consumer} "
              f"sync={result.mean_sync_time * 1e3:.3f}ms")
        if backend == "samhita":
            fabric = result.stats["fabric"]
            print(f"            fine-grained CR updates: "
                  f"{fabric.get('bytes.fine_grain', 0)} bytes total "
                  f"(ring indices travel as bytes, not pages)")
    print("\nEvery item arrives exactly once on both machines; the DSM ships")
    print("only the changed control words at each unlock thanks to RegC's")
    print("store instrumentation.")


if __name__ == "__main__":
    main()
