#!/usr/bin/env python
"""Why Regional Consistency: RegC vs a 1990s eager write-invalidate DSM.

Runs the strided micro-benchmark (maximum false sharing) under both
coherence protocols on identical hardware. The IVY-style protocol
ping-pongs whole pages between writers on every store; RegC lets writers
proceed on private twins and merges byte diffs at the barrier.

Run:  python examples/regc_vs_ivy.py
"""

from repro.core import SamhitaConfig
from repro.kernels import Allocation, MicrobenchParams, spawn_microbench
from repro.runtime import Runtime

PARAMS = MicrobenchParams(N=6, M=4, S=2, B=256,
                          allocation=Allocation.GLOBAL_STRIDED)
THREADS = 8


def run(coherence):
    rt = Runtime("samhita", n_threads=THREADS,
                 config=SamhitaConfig(coherence=coherence, functional=False))
    spawn_microbench(rt, PARAMS)
    result = rt.run()
    fabric = result.stats["fabric"]
    servers = result.stats["memory_servers"]
    print(f"[{coherence:4s}] compute={result.mean_compute_time * 1e3:8.3f}ms "
          f"sync={result.mean_sync_time * 1e3:7.3f}ms")
    print(f"       page traffic={fabric.get('bytes.page', 0) / 1024:8.0f} KiB  "
          f"upgrade traffic={fabric.get('bytes.upgrade_data', 0) / 1024:6.0f} KiB  "
          f"barrier diffs={fabric.get('bytes.barrier_diff', 0) / 1024:4.0f} KiB")
    print(f"       upgrades={servers.get('upgrades', 0)}  "
          f"recalls={servers.get('recalls', 0)}")
    return result


def main():
    print(f"Strided micro-benchmark, {THREADS} threads, maximum false "
          f"sharing:\n")
    regc = run("regc")
    ivy = run("ivy")
    factor = (ivy.mean_compute_time + ivy.mean_sync_time) / (
        regc.mean_compute_time + regc.mean_sync_time)
    print(f"\nThe eager protocol is {factor:.1f}x slower end to end: every")
    print("store to a shared page invalidates all other copies and drags the")
    print("page across the network; RegC's multiple-writer twins turn the")
    print("same sharing into byte-sized diffs merged once per barrier --")
    print("the design argument of the paper, measured.")
    assert factor > 3


if __name__ == "__main__":
    main()
