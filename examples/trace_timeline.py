#!/usr/bin/env python
"""Where does the time go? Trace a run and render the thread timeline.

Runs the strided micro-benchmark (maximum false sharing) with tracing on,
prints the per-thread Gantt chart -- compute (#), fault stalls (m), lock
waits (L), barrier waits (=) -- and the utilization report that attributes
the damage to components. Then shows the same workload with local
allocation for contrast: almost pure compute.

Run:  python examples/trace_timeline.py
"""

from repro.experiments import analyze, render_timeline
from repro.kernels import Allocation, MicrobenchParams, spawn_microbench
from repro.runtime import Runtime


def run_case(allocation, label):
    rt = Runtime("samhita", n_threads=4, trace=True)
    params = MicrobenchParams(N=4, M=2, S=2, B=256, allocation=allocation)
    spawn_microbench(rt, params)
    result = rt.run()
    print(f"--- {label} ---")
    print(render_timeline(rt.backend.tracer, result, width=84))
    print()
    return rt.backend, result


def main():
    run_case(Allocation.LOCAL, "local allocation (no false sharing)")
    backend, result = run_case(Allocation.GLOBAL_STRIDED,
                               "global strided (maximum false sharing)")
    print("--- utilization report (strided case) ---")
    print(analyze(backend, result).format())
    print()
    print("Reading the charts: under local allocation threads compute (#)")
    print("and briefly rendezvous (=); under strided sharing the rows fill")
    print("with fault stalls (m) and barrier/lock waits -- the pictures")
    print("behind Figures 5 and 11.")


if __name__ == "__main__":
    main()
