#!/usr/bin/env python
"""Heat diffusion on a plate via Jacobi iteration (the Figure 12 workload).

A hot top edge diffuses into a cold plate. The same nearest-neighbour
stencil kernel runs on the Pthreads baseline and on Samhita; both must agree
with the sequential NumPy reference bit-for-bit, and the run report shows
where DSM time goes (ghost-row exchange at block boundaries).

Run:  python examples/heat_equation.py
"""

import numpy as np

from repro.kernels import JacobiParams, jacobi_reference, spawn_jacobi
from repro.runtime import Runtime

PARAMS = JacobiParams(rows=48, cols=96, iterations=400, top_value=100.0,
                      collect_result=True)
N_THREADS = 4


def run_on(backend_name):
    rt = Runtime(backend_name, n_threads=N_THREADS)
    spawn_jacobi(rt, PARAMS)
    result = rt.run()
    residual, grid = result.value_of(0)
    return result, residual, grid


def ascii_plot(grid, rows=10, cols=32):
    """Coarse ASCII rendering of the temperature field."""
    shades = " .:-=+*#%@"
    r_idx = np.linspace(0, grid.shape[0] - 1, rows).astype(int)
    c_idx = np.linspace(0, grid.shape[1] - 1, cols).astype(int)
    sub = grid[np.ix_(r_idx, c_idx)]
    # Square-root ramp keeps the cooler regions visible.
    norm = np.sqrt(sub / max(float(sub.max()), 1e-9))
    return "\n".join(
        "".join(shades[min(int(v * len(shades)), len(shades) - 1)] for v in row)
        for row in norm)


def main():
    ref_residual, ref_grid = jacobi_reference(PARAMS)
    print(f"Jacobi heat diffusion: {PARAMS.rows}x{PARAMS.cols} grid, "
          f"{PARAMS.iterations} iterations, {N_THREADS} threads\n")
    for backend in ("pthreads", "samhita"):
        result, residual, grid = run_on(backend)
        assert np.allclose(grid, ref_grid), f"{backend} diverged from reference"
        print(f"[{backend:8s}] residual={residual:.6f} "
              f"compute={result.mean_compute_time * 1e3:.3f}ms "
              f"sync={result.mean_sync_time * 1e3:.3f}ms")
        if backend == "samhita":
            fabric = result.stats["fabric"]
            print(f"            page traffic: "
                  f"{fabric.get('bytes.page', 0) / 1024:.0f} KiB fetched, "
                  f"{fabric.get('bytes.barrier_diff', 0)} B merged at barriers, "
                  f"{fabric.get('bytes.fine_grain', 0)} B of fine-grain updates")
    print(f"\nresidual matches sequential reference ({ref_residual:.6f}); "
          f"temperature field:\n")
    print(ascii_plot(ref_grid))


if __name__ == "__main__":
    main()
