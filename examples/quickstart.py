#!/usr/bin/env python
"""Quickstart: one threaded program, two machines.

Writes a Pthreads-style kernel once and runs it unchanged on (a) a simulated
cache-coherent SMP and (b) the Samhita distributed shared memory system --
the paper's core programmability claim. The kernel increments a shared
counter under a mutex and builds a shared array cooperatively.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.runtime import Runtime, SharedArray

N_THREADS = 4
ROUNDS = 5


def kernel(ctx, shared, lock, bar):
    """Each thread fills its slice of a shared array and bumps a counter."""
    # Thread 0 allocates; everyone else picks the handles up after the
    # barrier (exactly how a Pthreads program shares a malloc'd buffer).
    if ctx.tid == 0:
        shared["counter"] = yield from ctx.malloc_shared(64)
        shared["array"] = yield from SharedArray.allocate(
            ctx, rows=ctx.nthreads, cols=16)
    yield from ctx.barrier(bar)

    arr = shared["array"].view(ctx)
    yield from arr.write_rows(ctx.tid,
                              np.full(16, float(ctx.tid + 1), np.float64))

    for _ in range(ROUNDS):
        yield from ctx.compute(1000)          # ...do some work...
        yield from ctx.lock(lock)             # enter a consistency region
        raw = yield from ctx.read(shared["counter"], 8)
        value = int(raw.view(np.int64)[0]) + 1
        payload = np.frombuffer(np.int64(value).tobytes(), np.uint8)
        yield from ctx.write(shared["counter"], 8, payload)
        yield from ctx.unlock(lock)           # fine-grained update ships here
    yield from ctx.barrier(bar)               # global consistency point

    total = yield from arr.read_all()         # read everyone's rows
    raw = yield from ctx.read(shared["counter"], 8)
    return int(raw.view(np.int64)[0]), float(total.sum())


def run_on(backend_name):
    rt = Runtime(backend_name, n_threads=N_THREADS)
    lock, bar = rt.create_lock(), rt.create_barrier()
    shared = {}
    rt.spawn_all(kernel, shared, lock, bar)
    result = rt.run()
    counter, checksum = result.value_of(0)
    print(f"[{backend_name:8s}] counter={counter} checksum={checksum:.1f} "
          f"virtual-time={result.elapsed * 1e6:.1f}us "
          f"(compute={result.mean_compute_time * 1e6:.1f}us, "
          f"sync={result.mean_sync_time * 1e6:.1f}us)")
    return counter, checksum


def main():
    expected = N_THREADS * ROUNDS
    print(f"{N_THREADS} threads x {ROUNDS} rounds -> counter should be {expected}\n")
    for backend in ("pthreads", "samhita"):
        counter, checksum = run_on(backend)
        assert counter == expected, "mutex-protected counter must be exact"
        assert checksum == 16 * sum(range(1, N_THREADS + 1))
    print("\nSame program, same answers; only the (virtual) timings differ --")
    print("the DSM pays for synchronization because every sync operation is")
    print("also a memory-consistency operation.")


if __name__ == "__main__":
    main()
