#!/usr/bin/env python
"""The paper's target platform: Samhita inside one heterogeneous node.

Figure 1's architecture -- manager and memory server on the host CPU,
compute threads on Xeon Phi coprocessor cores, PCIe in between -- and §V's
future-work comparison: the stock verbs-proxy path versus a direct SCIF
port of the Samhita communication layer.

Run:  python examples/heterogeneous_node.py
"""

from repro.core import SamhitaConfig, SamhitaSystem
from repro.interconnect import scif_link, verbs_proxy_link
from repro.kernels import Allocation, MicrobenchParams, spawn_microbench
from repro.runtime import Runtime, SamhitaBackend

PARAMS = MicrobenchParams(N=10, M=10, S=2, B=256,
                          allocation=Allocation.GLOBAL)
N_THREADS = 8


def run_hetero(bus, label):
    config = SamhitaConfig(functional=False)
    system = SamhitaSystem.hetero(n_coprocessors=1, config=config, bus=bus)
    rt = Runtime(SamhitaBackend(N_THREADS, system=system))
    spawn_microbench(rt, PARAMS)
    result = rt.run()
    print(f"[{label:12s}] compute={result.mean_compute_time * 1e3:.3f}ms "
          f"sync={result.mean_sync_time * 1e3:.3f}ms "
          f"(threads on mic0, manager+memory on host)")
    return result


def run_cluster_reference():
    """The paper's actual experimental setup, for comparison."""
    rt = Runtime("samhita", n_threads=N_THREADS,
                 config=SamhitaConfig(functional=False))
    spawn_microbench(rt, PARAMS)
    result = rt.run()
    print(f"[{'IB cluster':12s}] compute={result.mean_compute_time * 1e3:.3f}ms "
          f"sync={result.mean_sync_time * 1e3:.3f}ms "
          f"(threads on cluster nodes over QDR InfiniBand)")
    return result


def main():
    print("Micro-benchmark on three machines "
          f"({N_THREADS} threads, global allocation):\n")
    cluster = run_cluster_reference()
    proxy = run_hetero(verbs_proxy_link(), "verbs proxy")
    scif = run_hetero(scif_link(), "SCIF direct")

    total = lambda r: r.mean_compute_time + r.mean_sync_time
    saving = (1 - total(scif) / total(proxy)) * 100
    print(f"\nSCIF cuts {saving:.0f}% off the verbs-proxy run time -- the")
    print("quantified version of §V's claim that a SCIF communication layer")
    print('"will reduce the communication overheads" of a naive MIC port.')
    assert total(scif) < total(proxy)


if __name__ == "__main__":
    main()
