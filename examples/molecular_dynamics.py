#!/usr/bin/env python
"""Molecular dynamics on virtual shared memory (the Figure 13 workload).

Velocity-Verlet n-body integration with an all-pairs harmonic potential.
Demonstrates the paper's headline for compute-intensive applications: the
O(n) work per particle masks the DSM synchronization overhead, so Samhita
speedups track Pthreads closely.

Run:  python examples/molecular_dynamics.py
"""

from repro.kernels import MDParams, md_reference, spawn_md
from repro.runtime import Runtime

PARAMS = MDParams(n_particles=96, steps=40, dt=1e-3)


def main():
    ref = md_reference(PARAMS)
    print(f"Velocity-Verlet MD: {PARAMS.n_particles} particles, "
          f"{PARAMS.steps} steps\n")

    for backend, threads in (("pthreads", 4), ("samhita", 4), ("samhita", 8)):
        rt = Runtime(backend, n_threads=threads)
        spawn_md(rt, PARAMS)
        result = rt.run()
        energies = result.value_of(0)
        drift = abs(energies[-1] - energies[0]) / abs(energies[0])
        assert abs(energies[-1] - ref[-1]) < 1e-6 * abs(ref[-1])
        print(f"[{backend:8s} P={threads}] "
              f"E0={energies[0]:.4f} E_end={energies[-1]:.4f} "
              f"drift={drift:.2e} "
              f"compute={result.mean_compute_time * 1e3:.2f}ms "
              f"sync={result.mean_sync_time * 1e3:.2f}ms")

    print("\nEnergy is conserved (velocity Verlet is symplectic) and every")
    print("backend produces the identical trajectory. At this demo size the")
    print("DSM sync cost is visible; Figure 13 uses n=8192, where the O(n)")
    print("work per particle masks it entirely and Samhita scales to 32 cores.")


if __name__ == "__main__":
    main()
