"""Ablations of the design choices DESIGN.md §6 calls out.

Every mechanism §II describes is toggled independently and its measured
consequence asserted. Results are archived under
``benchmarks/results/ablation_*.txt``.
"""

from __future__ import annotations

import pathlib

from repro.core import SamhitaConfig, SamhitaSystem
from repro.experiments.harness import run_workload
from repro.interconnect import gigabit_ethernet, ib_qdr, scif_link, verbs_proxy_link
from repro.kernels import Allocation, MicrobenchParams, spawn_microbench
from repro.memory import MemoryLayout
from repro.memory.cache import EvictionPolicy
from repro.runtime import Runtime, SamhitaBackend

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

STRIDED = MicrobenchParams(N=10, M=10, S=4, B=256,
                           allocation=Allocation.GLOBAL_STRIDED)
#: 32 rows x 2 KiB = 64 KiB per thread: four cache lines, so sequential
#: scans exercise the adjacent-line prefetcher.
LOCAL_BIG = MicrobenchParams(N=4, M=2, S=32, B=256, allocation=Allocation.LOCAL)
THREADS = 8


def _archive(name: str, lines: list[str]) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    (RESULTS_DIR / f"ablation_{name}.txt").write_text(text + "\n")
    print("\n" + text)


def _run(params, config=None, n_threads=THREADS, **kw):
    return run_workload("samhita", n_threads, spawn_microbench, params,
                        config=config, **kw)


def _stream_scan_time(pages_per_line: int, mbytes: int = 2) -> float:
    """Virtual time for one thread to cold-stream ``mbytes`` MiB through the
    DSM with a given line size (prefetch off to isolate the effect)."""
    config = SamhitaConfig(layout=MemoryLayout(pages_per_line=pages_per_line),
                           prefetch_adjacent=False, functional=False)
    rt = Runtime("samhita", n_threads=1, config=config)
    total = mbytes << 20

    def scan(ctx):
        addr = yield from ctx.malloc(total)
        for off in range(0, total, 4096):
            yield from ctx.read(addr + off, 8)
        return ctx.clock.compute

    rt.spawn(scan)
    return rt.run().value_of(0)


def test_line_size(benchmark):
    """Multi-page cache lines amortize latency for spatially-local scans but
    amplify false-sharing traffic for strided access."""

    def sweep():
        out = {}
        for ppl in (1, 2, 4, 8):
            scan = _stream_scan_time(ppl)
            strided = _run(STRIDED, SamhitaConfig(
                layout=MemoryLayout(pages_per_line=ppl)))
            out[ppl] = (scan, strided.mean_compute_time,
                        strided.stats["fabric"].get("bytes.page", 0))
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _archive("line_size", [
        "pages/line  2MiB-scan(s)  strided-compute(s)  strided-page-bytes",
        *(f"{ppl:10d}  {v[0]:.6f}     {v[1]:.6f}           {v[2]:.0f}"
          for ppl, v in out.items()),
    ])
    # Bigger lines shorten the cold sequential scan (fewer round-trips)...
    assert out[8][0] < 0.5 * out[1][0]
    # ...but move more page bytes under heavy false sharing.
    assert out[8][2] > out[1][2]


def test_prefetch(benchmark):
    """Adjacent-line prefetch (§II "anticipatory paging") overlaps fetch
    latency for sequential access."""

    def sweep():
        on = _run(LOCAL_BIG, SamhitaConfig(prefetch_adjacent=True))
        off = _run(LOCAL_BIG, SamhitaConfig(prefetch_adjacent=False))
        return on, off

    on, off = benchmark.pedantic(sweep, rounds=1, iterations=1)
    hits = on.stats["caches"].get("prefetch_hits", 0)
    _archive("prefetch", [
        f"prefetch on : compute={on.mean_compute_time:.6f}s prefetch_hits={hits}",
        f"prefetch off: compute={off.mean_compute_time:.6f}s",
    ])
    assert hits > 0
    assert on.mean_compute_time <= off.mean_compute_time


def test_eviction_policy(benchmark):
    """Under cache pressure the paper's dirty-biased policy is compared
    against plain LRU and the conventional clean-first heuristic."""

    # 16 rows = 8 pages of data + the shared-global page, against an 8-page
    # cache: guaranteed eviction pressure every outer iteration.
    params = MicrobenchParams(N=6, M=2, S=16, B=256, allocation=Allocation.LOCAL)

    def sweep():
        out = {}
        for policy in EvictionPolicy:
            config = SamhitaConfig(cache_capacity_pages=8,
                                   prefetch_adjacent=False,
                                   eviction_policy=policy)
            result = run_workload("samhita", 2, spawn_microbench, params,
                                  config=config)
            caches = result.stats["caches"]
            out[policy.value] = (result.mean_compute_time,
                                 caches.get("evictions", 0),
                                 caches.get("evictions_dirty", 0))
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _archive("eviction", [
        "policy        compute(s)  evictions  dirty-evictions",
        *(f"{k:12s}  {v[0]:.6f}    {v[1]:7d}  {v[2]:7d}" for k, v in out.items()),
    ])
    # All policies evict under this pressure; dirty-biased writes back more
    # aggressively (more dirty evictions than clean-first).
    assert all(v[1] > 0 for v in out.values())
    assert out["dirty-biased"][2] >= out["clean-first"][2]


def test_multiple_writer(benchmark):
    """The twin/diff multiple-writer protocol vs single-writer whole-page
    write-back: diffs shrink sync traffic under false sharing."""

    def sweep():
        mw = _run(STRIDED, SamhitaConfig(multiple_writer=True))
        sw = _run(STRIDED, SamhitaConfig(multiple_writer=False))
        return mw, sw

    mw, sw = benchmark.pedantic(sweep, rounds=1, iterations=1)
    mw_bytes = mw.stats["fabric"].get("bytes.barrier_diff", 0)
    sw_bytes = sw.stats["fabric"].get("bytes.barrier_diff", 0)
    _archive("multi_writer", [
        f"multiple-writer: barrier-diff bytes={mw_bytes:.0f} sync={mw.mean_sync_time:.6f}s",
        f"single-writer  : barrier-diff bytes={sw_bytes:.0f} sync={sw.mean_sync_time:.6f}s",
    ])
    assert sw_bytes > mw_bytes
    assert sw.mean_sync_time > mw.mean_sync_time


def test_regc_fine_grain(benchmark):
    """RegC's fine-grained consistency-region updates vs the page-grained
    fallback: lock traffic is bytes, not pages."""

    lock_heavy = MicrobenchParams(N=20, M=1, S=1, B=64,
                                  allocation=Allocation.LOCAL)

    def sweep():
        fine = _run(lock_heavy, SamhitaConfig(regc_fine_grain=True))
        page = _run(lock_heavy, SamhitaConfig(regc_fine_grain=False))
        return fine, page

    fine, page = benchmark.pedantic(sweep, rounds=1, iterations=1)

    def lock_bytes(result):
        fabric = result.stats["fabric"]
        return (fabric.get("bytes.fine_grain", 0) + fabric.get("bytes.cr_page", 0)
                + fabric.get("bytes.page", 0))

    _archive("regc_finegrain", [
        f"fine-grain: CR-related bytes={lock_bytes(fine):.0f} sync={fine.mean_sync_time:.6f}s",
        f"page-grain: CR-related bytes={lock_bytes(page):.0f} sync={page.mean_sync_time:.6f}s",
    ])
    assert lock_bytes(page) > 2 * lock_bytes(fine)
    assert page.mean_sync_time > fine.mean_sync_time


def test_allocator_striping(benchmark):
    """Striping large allocations across memory servers relieves the
    hot-spot the single-server configuration creates (§II strategy 3)."""

    big = MicrobenchParams(N=4, M=1, S=32, B=512,
                           allocation=Allocation.GLOBAL_STRIDED)

    def sweep():
        one = _run(big, SamhitaConfig(n_memory_servers=1), n_threads=16)
        four = _run(big, SamhitaConfig(n_memory_servers=4), n_threads=16)
        return one, four

    one, four = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _archive("allocator_striping", [
        f"1 memory server : compute={one.mean_compute_time:.6f}s",
        f"4 memory servers: compute={four.mean_compute_time:.6f}s",
    ])
    # Fetches spread across four servers instead of queueing at one.
    assert four.mean_compute_time < one.mean_compute_time


def test_local_sync_optimization(benchmark):
    """§V: a single-node Samhita can skip the manager round-trip for
    synchronization."""

    params = MicrobenchParams(N=20, M=1, S=1, B=64, allocation=Allocation.LOCAL)

    def one(local_opt):
        config = SamhitaConfig(local_sync_optimization=local_opt)
        system = SamhitaSystem.single_node(config=config)
        rt = Runtime(SamhitaBackend(4, system=system))
        spawn_microbench(rt, params)
        return rt.run()

    def sweep():
        return one(False), one(True)

    baseline, optimized = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _archive("local_sync", [
        f"manager-mediated sync: {baseline.mean_sync_time:.6f}s",
        f"local sync (§V)      : {optimized.mean_sync_time:.6f}s",
    ])
    assert optimized.mean_sync_time < baseline.mean_sync_time


def test_eager_refresh(benchmark):
    """Update-style barriers (Munin-flavoured): batched in-barrier refresh
    vs lazy refaulting -- where the false-sharing bill gets paid."""

    def sweep():
        lazy = _run(STRIDED, SamhitaConfig())
        eager = _run(STRIDED, SamhitaConfig(barrier_eager_refresh=True))
        return lazy, eager

    lazy, eager = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _archive("eager_refresh", [
        f"lazy : compute={lazy.mean_compute_time:.6f}s sync={lazy.mean_sync_time:.6f}s "
        f"faults={lazy.stats['compute_servers'].get('faults', 0)}",
        f"eager: compute={eager.mean_compute_time:.6f}s sync={eager.mean_sync_time:.6f}s "
        f"faults={eager.stats['compute_servers'].get('faults', 0)}",
    ])
    assert eager.mean_compute_time < lazy.mean_compute_time
    assert eager.mean_sync_time > lazy.mean_sync_time


def test_hierarchical_sync(benchmark):
    """Node-combining barriers (§V-adjacent): manager traffic per barrier
    drops from O(threads) to O(nodes), flattening the Figure 11 slope."""

    params = MicrobenchParams(N=10, M=1, S=1, B=64, allocation=Allocation.LOCAL)

    def one(hierarchical, n_threads):
        config = SamhitaConfig(hierarchical_sync=hierarchical)
        return run_workload("samhita", n_threads, spawn_microbench, params,
                            config=config)

    def sweep():
        out = {}
        for n_threads in (8, 32):
            flat = one(False, n_threads)
            combined = one(True, n_threads)
            out[n_threads] = (flat.mean_sync_time, combined.mean_sync_time)
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _archive("hierarchical_sync", [
        "threads  flat-sync(s)  combined-sync(s)",
        *(f"{p:7d}  {v[0]:.6f}      {v[1]:.6f}" for p, v in out.items()),
    ])
    # The benefit grows with thread count.
    gain8 = out[8][0] / out[8][1]
    gain32 = out[32][0] / out[32][1]
    assert gain32 > gain8 > 0.9


def test_scif_vs_verbs_proxy(benchmark):
    """§V: a direct SCIF communication layer vs tunnelling verbs over PCIe
    through a proxy, on the Figure 1 heterogeneous node."""

    params = MicrobenchParams(N=10, M=10, S=2, B=256,
                              allocation=Allocation.GLOBAL)

    def one(bus):
        system = SamhitaSystem.hetero(config=SamhitaConfig(functional=False),
                                      bus=bus)
        rt = Runtime(SamhitaBackend(8, system=system))
        spawn_microbench(rt, params)
        return rt.run()

    def sweep():
        return one(verbs_proxy_link()), one(scif_link())

    proxy, scif = benchmark.pedantic(sweep, rounds=1, iterations=1)
    total = lambda r: r.mean_compute_time + r.mean_sync_time
    _archive("scif", [
        f"verbs proxy: total={total(proxy):.6f}s",
        f"SCIF direct: total={total(scif):.6f}s",
    ])
    assert total(scif) < total(proxy)


def test_page_size(benchmark):
    """Page granularity: smaller pages shrink false-sharing diffs but
    multiply fault counts; bigger pages amortize fetches but amplify
    sharing. 4 KiB (the paper's mprotect granularity) sits between."""

    def sweep():
        out = {}
        for page_bytes in (1024, 4096, 16384):
            layout = MemoryLayout(page_bytes=page_bytes)
            result = _run(STRIDED, SamhitaConfig(layout=layout))
            out[page_bytes] = (result.mean_compute_time,
                               result.mean_sync_time,
                               result.stats["fabric"].get("bytes", 0))
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _archive("page_size", [
        "page(B)  compute(s)  sync(s)   total-bytes",
        *(f"{p:7d}  {v[0]:.6f}    {v[1]:.6f}  {v[2]:.0f}" for p, v in out.items()),
    ])
    # Bigger pages move more bytes under false sharing.
    assert out[16384][2] > out[1024][2]


def test_coherence_baseline(benchmark):
    """RegC vs the eager write-invalidate (IVY-style) protocol of 1990s
    page-based DSMs -- the implicit baseline the paper's whole design
    (multiple-writer diffs + consistency regions) exists to beat."""

    workloads = {
        "local": MicrobenchParams(N=6, M=4, S=2, B=256,
                                  allocation=Allocation.LOCAL),
        "strided": MicrobenchParams(N=6, M=4, S=2, B=256,
                                    allocation=Allocation.GLOBAL_STRIDED),
    }

    def sweep():
        out = {}
        for name, params in workloads.items():
            for proto, config in (("regc", SamhitaConfig()),
                                  ("ivy", SamhitaConfig(coherence="ivy"))):
                result = run_workload("samhita", 8, spawn_microbench, params,
                                      config=config)
                out[(name, proto)] = (result.mean_compute_time,
                                      result.mean_sync_time)
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _archive("coherence_baseline", [
        "workload  protocol  compute(s)  sync(s)",
        *(f"{w:8s}  {p:8s}  {v[0]:.6f}    {v[1]:.6f}"
          for (w, p), v in out.items()),
    ])
    # False sharing: the eager protocol ping-pongs data pages on every
    # write -- an order of magnitude over RegC.
    assert out[("strided", "ivy")][0] > 10 * out[("strided", "regc")][0]
    # With private data IVY's only ping-pong is the shared counter, so it
    # sits far below its own strided cost...
    assert out[("local", "ivy")][0] < 0.2 * out[("strided", "ivy")][0]
    # ...but RegC's fine-grained CR updates beat even that.
    assert out[("local", "regc")][0] < out[("local", "ivy")][0]


def test_interconnect_history(benchmark):
    """Why 1990s DSM 'never made a big impact': the identical system over
    gigabit Ethernet vs QDR InfiniBand."""

    params = MicrobenchParams(N=5, M=10, S=2, B=256,
                              allocation=Allocation.GLOBAL)

    def one(link):
        return run_workload("samhita", 8, spawn_microbench, params,
                            fabric_link=link)

    def sweep():
        return one(gigabit_ethernet()), one(ib_qdr())

    gbe, ib = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _archive("interconnect_history", [
        f"1 GbE (1990s-class): compute={gbe.mean_compute_time:.6f}s "
        f"sync={gbe.mean_sync_time:.6f}s",
        f"QDR InfiniBand     : compute={ib.mean_compute_time:.6f}s "
        f"sync={ib.mean_sync_time:.6f}s",
    ])
    # The interconnect alone moves DSM from hopeless to viable.
    assert gbe.mean_sync_time > 5 * ib.mean_sync_time
