"""Extended-experiment benches: the studies beyond Figures 3-13.

These regenerate the §V/extension results: the Figure 1 machine with SCIF
vs verbs-proxy, multi-coprocessor placement, and the extension kernels'
scaling. Tables land in benchmarks/results/ext_*.txt.
"""

from __future__ import annotations

import pathlib

from repro.experiments.extended import (
    hetero_figure,
    interconnect_era_figure,
    matmul_figure,
    multi_coprocessor_figure,
    pipeline_figure,
    sor_figure,
    taskfarm_figure,
)
from repro.experiments.report import format_figure

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _archive(fr):
    RESULTS_DIR.mkdir(exist_ok=True)
    text = format_figure(fr)
    name = fr.figure.replace("-", "_")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
    return fr


def test_hetero_machine(benchmark):
    """§V quantified: SCIF beats the verbs proxy at every thread count and
    is at worst comparable to the pessimistic IB-cluster stand-in."""
    fr = _archive(benchmark.pedantic(hetero_figure, rounds=1, iterations=1))
    for cores in fr.xs:
        assert fr.series["scif"].y_at(cores) < fr.series["verbs-proxy"].y_at(cores)
    assert fr.series["scif"].y_at(32) <= 1.15 * fr.series["ib-cluster"].y_at(32)


def test_multi_coprocessor(benchmark):
    """A second coprocessor doubles PCIe bandwidth into the node: spreading
    threads across two buses wins at scale."""
    fr = _archive(benchmark.pedantic(multi_coprocessor_figure, rounds=1,
                                     iterations=1))
    assert fr.series["2 mics (spread)"].y_at(32) < fr.series["1 mic"].y_at(32)


def test_matmul_scaling(benchmark):
    """Read-broadcast sharing is DSM's best case: near-linear scaling."""
    fr = _archive(benchmark.pedantic(matmul_figure, rounds=1, iterations=1))
    smh = fr.series["samhita"]
    assert smh.y_at(8) > 6.0
    assert smh.y_at(32) > 20.0


def test_sor_scaling(benchmark):
    """Red-black SOR: two barriers per iteration and fragmented diffs cap
    DSM scaling well below Jacobi's -- sharing *pattern*, not just volume,
    decides DSM performance."""
    fr = _archive(benchmark.pedantic(sor_figure, rounds=1, iterations=1))
    smh = fr.series["samhita"]
    assert smh.y_at(4) > 2.5             # scales within a node
    assert smh.y_at(32) < smh.y_at(16)   # degrades past its sweet spot
    assert max(smh.ys) < 8               # never approaches Jacobi's peak


def test_taskfarm_scheduling(benchmark):
    """Dynamic scheduling beats a static split under clustered imbalance on
    both machines; the DSM's lock round-trips narrow but do not erase the
    advantage."""
    fr = _archive(benchmark.pedantic(taskfarm_figure, rounds=1, iterations=1))
    for cores in (4, 8):
        assert (fr.series["pth-dyn"].y_at(cores)
                < fr.series["pth-static"].y_at(cores))
        assert (fr.series["sam-dyn"].y_at(cores)
                < fr.series["sam-static"].y_at(cores))
    # DSM locks cost more, so the dynamic advantage is smaller there.
    pth_adv = fr.series["pth-static"].y_at(8) / fr.series["pth-dyn"].y_at(8)
    sam_adv = fr.series["sam-static"].y_at(8) / fr.series["sam-dyn"].y_at(8)
    assert pth_adv > sam_adv > 1.0


def test_interconnect_eras(benchmark):
    """Three decades of fabrics: overhead collapses Ethernet -> Myrinet ->
    QDR (the paper's motivation), then *rises* again on 2020s hardware
    because cores outpaced network latency (the latency wall)."""
    fr = _archive(benchmark.pedantic(interconnect_era_figure, rounds=1,
                                     iterations=1))
    for cores in fr.xs:
        gbe = fr.series["1gbe-1990s"].y_at(cores)
        myr = fr.series["myrinet-2000s"].y_at(cores)
        qdr = fr.series["qdr-2013"].y_at(cores)
        hdr = fr.series["hdr-2020s"].y_at(cores)
        assert gbe > myr > qdr
        assert hdr > qdr  # the latency wall


def test_pipeline_throughput(benchmark):
    """The condvar pipeline runs correctly on the DSM at a throughput within
    about two orders of magnitude of hardware shared memory -- fine-grained
    producer/consumer queues are DSM's worst case and the price is visible."""
    fr = _archive(benchmark.pedantic(pipeline_figure, rounds=1, iterations=1))
    for consumers in (1, 4):
        pth = fr.series["pthreads"].y_at(consumers)
        smh = fr.series["samhita"].y_at(consumers)
        assert smh > 0
        assert pth / smh < 500
