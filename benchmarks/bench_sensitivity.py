"""Sensitivity benches: do the paper's shapes survive calibration swings?

Complements bench_ablations.py: ablations toggle *mechanisms*, these sweeps
perturb *timing constants* and check the orderings the figures rely on.
Results land in benchmarks/results/sensitivity_*.txt.
"""

from __future__ import annotations

import pathlib

from repro.experiments.report import format_figure
from repro.experiments.sensitivity import (
    config_sensitivity,
    link_sensitivity,
    ordering_robust,
)
from repro.interconnect import ib_ddr, ib_fdr, ib_qdr, ib_sdr
from repro.kernels import Allocation, MicrobenchParams, spawn_microbench

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

LOCAL = MicrobenchParams(N=6, M=4, S=2, B=256, allocation=Allocation.LOCAL)
GLOBAL = MicrobenchParams(N=6, M=4, S=2, B=256, allocation=Allocation.GLOBAL)
STRIDED = MicrobenchParams(N=6, M=4, S=2, B=256,
                           allocation=Allocation.GLOBAL_STRIDED)


def _archive(name, fr):
    RESULTS_DIR.mkdir(exist_ok=True)
    text = format_figure(fr)
    (RESULTS_DIR / f"sensitivity_{name}.txt").write_text(text + "\n")
    print("\n" + text)
    return fr


def test_manager_service_time(benchmark):
    """Figure 11's manager-contention story holds across a 10x swing."""
    fr = benchmark.pedantic(
        lambda: config_sensitivity("manager_service_time",
                                   [0.5e-6, 1.5e-6, 5e-6],
                                   spawn_microbench, STRIDED, n_threads=8),
        rounds=1, iterations=1)
    _archive("manager_service", fr)
    sync = fr.series["sync"]
    assert sync.ys == sorted(sync.ys)  # monotone in the constant


def test_interconnect_generations(benchmark):
    """Each InfiniBand generation shaves the same workload's times --
    and the compute/sync split stays shaped the same."""
    links = {"sdr": ib_sdr(), "ddr": ib_ddr(), "qdr": ib_qdr(), "fdr": ib_fdr()}
    fr = benchmark.pedantic(
        lambda: link_sensitivity(links, spawn_microbench, STRIDED, n_threads=8),
        rounds=1, iterations=1)
    _archive("ib_generations", fr)
    compute = fr.series["compute"].ys
    assert compute == sorted(compute, reverse=True)  # faster fabric, less stall


def test_allocation_ordering_is_calibration_robust(benchmark):
    """local <= global <= strided compute time at every plausible value of
    the least-certain constant (the fault-handler cost)."""
    robust = benchmark.pedantic(
        lambda: ordering_robust(
            "fault_handler_time", [0.3e-6, 1e-6, 3e-6],
            spawn_microbench,
            {"a_local": LOCAL, "b_global": GLOBAL, "c_strided": STRIDED},
            n_threads=8),
        rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "sensitivity_ordering.txt").write_text(
        f"local/global/strided compute ordering robust across "
        f"fault_handler_time sweep: {robust}\n")
    assert robust
