"""Figure 4: normalized compute time vs cores, GLOBAL allocation.

Paper claim: "when the amount of compute performed is low the added penalty
incurred by Samhita due to false sharing and other overheads is noticeable.
However, as we increase the amount of compute this cost is amortized."
"""

from benchmarks.conftest import run_figure
from repro.experiments import figures


def test_fig04_global_allocation(benchmark, archive):
    fr = archive(run_figure(benchmark, figures.fig04))
    # Noticeable penalty at M=1 beyond one thread...
    assert fr.series["smh, M=1"].y_at(8) > 1.5
    # ...amortized by increasing compute.
    assert fr.series["smh, M=100"].y_at(8) < fr.series["smh, M=1"].y_at(8)
    assert fr.series["smh, M=100"].y_at(32) < fr.series["smh, M=1"].y_at(32)
