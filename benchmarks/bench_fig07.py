"""Figure 7: compute time vs cores for S in {1,2,4,8}, GLOBAL allocation.

Paper claim: "Due to modest false sharing, the compute time per thread does
grow slowly as the number of compute threads increases. However ... the
penalty is not significant" (compared with Figure 6).
"""

from benchmarks.conftest import run_figure
from repro.experiments import figures


def test_fig07_global_s_sweep(benchmark, archive):
    fr = archive(run_figure(benchmark, figures.fig07))
    for S in (1, 2, 4, 8):
        series = fr.series[f"S = {S}"]
        # Grows with cores (modest false sharing)...
        assert series.y_at(32) > series.y_at(1)
        # ...but bounded (not catastrophic; the boundary pages are the only
        # shared ones, though line-granularity fetches through one memory
        # server make the S=8 point approach the strided case).
        assert series.y_at(32) < 25 * series.y_at(1)
    # Mid-range S: global penalty sits clearly below strided (Figure 8).
    strided = figures.fig08(smh_cores=(16,), s_values=(2, 4))
    assert fr.series["S = 2"].y_at(16) < strided.series["S = 2"].y_at(16)
    assert fr.series["S = 4"].y_at(16) < strided.series["S = 4"].y_at(16)
