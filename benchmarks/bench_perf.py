"""Wall-clock benchmark + regression gate for the hot-path work.

Times the *smoke campaign* (fig03 + fig12 at --quick scale) in three
configurations and emits ``BENCH_perf.json``:

* ``after_serial``        -- plain in-process run (best-of-N wall clock),
* ``after_workers4_cold`` -- ``--workers 4`` pool + empty result cache,
* ``after_workers4_cached`` -- same executor re-run against the warm cache.

Each configuration is compared against ``BASELINE_SEED``, the same smoke
campaign measured at the seed commit (pre-optimization code), so the JSON
records before/after honestly. A serial per-cell pass additionally records
wall clock, simulated-events/sec and software-cache-ops/sec for every cell.

Run with::

    PYTHONPATH=src python benchmarks/bench_perf.py            # writes BENCH_perf.json
    PYTHONPATH=src python benchmarks/bench_perf.py --best-of 1 --out /tmp/b.json

``tools/bench_report.py`` renders the JSON and implements the CI gate.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.experiments import figures  # noqa: E402
from repro.experiments.__main__ import _QUICK_KWARGS  # noqa: E402
from repro.experiments.parallel import (  # noqa: E402
    Executor, ResultCache, activate, cell_key)
from repro.sim.engine import engine_variant  # noqa: E402

#: The smoke campaign: one microbenchmark figure + one application figure,
#: both at --quick scale. Small enough for CI, large enough to exercise the
#: DES hot paths (the 16-core Jacobi cell alone schedules ~1M events).
SMOKE_FIGURES = ("fig03", "fig12")

#: Smoke-campaign wall clock measured at the seed commit (cf352c7, the
#: pre-optimization code), same host, best of 3: 6.682 / 6.805 / 6.923 s.
#: This is the "before" side of the before/after record.
BASELINE_SEED = {
    "wall_s": 6.682,
    "best_of": 3,
    "commit": "cf352c7",
    "note": "same smoke campaign (fig03+fig12 --quick), serial, seed code",
    # Scheduled-event count of the same campaign with the legacy per-event
    # shape (measured via REPRO_NO_COALESCE=1, which restores it exactly);
    # the seed code schedules at least this many. The --check-events gate
    # in tools/bench_report.py compares against this.
    "events_scheduled": 557_529,
}


#: Trajectory fingerprint of the canonical functional Jacobi cell at the
#: PR 8 commit (a0b19e2), captured with the same ``_jacobi_fingerprint``
#: shape. ``batched_round_trips=False`` must reproduce this dict exactly --
#: the --check-batched-rt gate in tools/bench_report.py compares them.
PR8_FINGERPRINT = {
    "grid_sha256": ("2b3e7a116b07bdfd16475c9584b7b7e1"
                    "8394155fdfc4cc67038985f54f9e34b2"),
    "gdiff": 7.8125,
    "elapsed": 0.001379653349999996,
    "events_scheduled": 849,
    "cache_counters": {
        "diff_bytes": 512,
        "diffs_taken": 166,
        "fine_grain_bytes": 480,
        "installs": 292,
        "invalidations": 174,
        "page_touches": 489,
        "prefetch_hits": 113,
        "prefetch_installs": 189,
        "read_bytes": 848096,
        "reads": 49,
        "twins_created": 182,
        "write_bytes": 897144,
        "writes": 37,
    },
}


#: Trajectory fingerprint of the canonical functional Jacobi cell at the
#: PR 9 commit (de37097), captured with the same ``_jacobi_fingerprint``
#: shape. The default configuration (gray-failure machinery off) must
#: reproduce this dict exactly -- the --check-grayfail-off gate in
#: tools/bench_report.py compares them.
PR9_FINGERPRINT = {
    "grid_sha256": ("2b3e7a116b07bdfd16475c9584b7b7e1"
                    "8394155fdfc4cc67038985f54f9e34b2"),
    "gdiff": 7.8125,
    "elapsed": 0.0008569759499999993,
    "events_scheduled": 446,
    "cache_counters": {
        "diff_bytes": 0,
        "diffs_taken": 136,
        "fine_grain_bytes": 480,
        "installs": 228,
        "invalidations": 122,
        "page_touches": 489,
        "read_bytes": 848096,
        "reads": 49,
        "twins_created": 160,
        "write_bytes": 897144,
        "writes": 37,
    },
}


def run_smoke(executor=None, config=None) -> float:
    """Run the smoke campaign once; returns wall-clock seconds."""
    t0 = time.perf_counter()
    with activate(executor):
        for name in SMOKE_FIGURES:
            figures.FIGURES[name](**_QUICK_KWARGS[name], config=config)
    return time.perf_counter() - t0


def best_of(n: int, fn, *args) -> tuple[float, list[float]]:
    runs = [fn(*args) for _ in range(n)]
    return min(runs), runs


class _RecordingExecutor(Executor):
    """Serial executor that records per-cell wall clock and throughput."""

    def __init__(self):
        super().__init__(workers=0, cache=None)
        self.cells: list[dict] = []
        self._seen: dict[str, dict] = {}

    def map(self, specs):
        out = []
        for spec in specs:
            key = cell_key(spec)
            rec = self._seen.get(key)
            if rec is None:
                t0 = time.perf_counter()
                result = super().map([spec])[0]
                wall = time.perf_counter() - t0
                engine_stats = result.stats.get("engine", {})
                events = engine_stats.get("scheduled_events", 0)
                coalesced = engine_stats.get("coalesced_events", 0)
                caches = result.stats.get("caches", {})
                cache_ops = caches.get("reads", 0) + caches.get("writes", 0)
                rec = {
                    "cell": f"{spec.backend}-{spec.cores}",
                    "backend": spec.backend,
                    "cores": spec.cores,
                    "workload": spec.spawn_fn.__name__,
                    "wall_s": round(wall, 4),
                    "events": events,
                    "events_coalesced": coalesced,
                    "events_per_sec": round(events / wall) if wall else 0,
                    "cache_ops": cache_ops,
                    "cache_ops_per_sec": round(cache_ops / wall) if wall else 0,
                    "_result": result,
                }
                self._seen[key] = rec
                self.cells.append({k: v for k, v in rec.items() if k != "_result"})
            out.append(rec["_result"])
        return out


def measure_cells() -> list[dict]:
    """One instrumented serial pass: per-cell wall clock + throughput."""
    recorder = _RecordingExecutor()
    with activate(recorder):
        for name in SMOKE_FIGURES:
            figures.FIGURES[name](**_QUICK_KWARGS[name])
            for cell in recorder.cells:
                cell.setdefault("figure", name)
    return recorder.cells


def _jacobi_fingerprint(config) -> dict:
    """Canonical functional Jacobi cell -> trajectory fingerprint."""
    import hashlib

    from repro.experiments.harness import run_workload_direct
    from repro.kernels.jacobi import JacobiParams, spawn_jacobi

    params = JacobiParams(rows=64, cols=256, iterations=3,
                          collect_result=True)
    result = run_workload_direct("samhita", 4, spawn_jacobi, params,
                                 functional=True, config=config)
    gdiff, grid = result.threads[0].value
    return {
        "grid_sha256": hashlib.sha256(grid.tobytes()).hexdigest(),
        "gdiff": gdiff,
        "elapsed": result.elapsed,
        "events_scheduled": result.stats["engine"]["scheduled_events"],
        "cache_counters": dict(sorted(result.stats["caches"].items())),
    }, result


def faults_off_fingerprint() -> dict:
    """Injector absent vs armed-but-silent: the two trajectories must be
    bit-identical (the --check-faults-off gate compares these dicts)."""
    from repro.core.params import SamhitaConfig
    from repro.faults import FaultPlan

    absent, _ = _jacobi_fingerprint(None)
    silent, _ = _jacobi_fingerprint(SamhitaConfig(faults=FaultPlan(seed=0)))
    return {"injector_absent": absent, "injector_silent": silent}


def replication_off_fingerprint() -> dict:
    """Default build vs explicit ``replication_factor=1``: the replication
    machinery must not exist at rf=1 -- no WAL, no checksums, no detector,
    no extra events (the --check-replication-off gate compares these)."""
    from repro.core.params import SamhitaConfig

    rf_absent, _ = _jacobi_fingerprint(None)
    rf_one, _ = _jacobi_fingerprint(SamhitaConfig(replication_factor=1))
    return {"rf_absent": rf_absent, "rf_one": rf_one}


def replication_overhead() -> dict:
    """Healthy-path cost of rf=2 vs rf=1 on a two-home machine: same data,
    extra WAL/ship/apply work and wire bytes, no failures."""
    from repro.core.params import SamhitaConfig

    base, base_result = _jacobi_fingerprint(
        SamhitaConfig(n_memory_servers=2))
    repl, repl_result = _jacobi_fingerprint(
        SamhitaConfig(n_memory_servers=2, replication_factor=2))
    counters = repl_result.stats.get("replication", {})
    return {
        "campaign": "jacobi 64x256x3 functional cell, n_memory_servers=2",
        "data_identical": (repl["grid_sha256"] == base["grid_sha256"]
                           and repl["gdiff"] == base["gdiff"]),
        "elapsed_rf1": base["elapsed"],
        "elapsed_rf2": repl["elapsed"],
        "elapsed_overhead": (round(repl["elapsed"] / base["elapsed"] - 1.0, 4)
                             if base["elapsed"] else None),
        "events_rf1": base["events_scheduled"],
        "events_rf2": repl["events_scheduled"],
        "counters": {k: counters[k] for k in sorted(counters)
                     if k.startswith(("wal_", "repl_", "replica_"))},
        "failovers": counters.get("failovers", 0),
    }


def chaos_counters() -> dict:
    """One seeded drop-storm cell: recovery counters + data-identity bit."""
    from repro.core.params import SamhitaConfig
    from repro.faults import drop_storm

    clean, _ = _jacobi_fingerprint(None)
    plan = drop_storm(11)
    faulty, result = _jacobi_fingerprint(SamhitaConfig(faults=plan))
    return {
        "plan": "drop_storm(seed=11)",
        "data_identical": (faulty["grid_sha256"] == clean["grid_sha256"]
                           and faulty["gdiff"] == clean["gdiff"]),
        "elapsed_clean": clean["elapsed"],
        "elapsed_faulty": faulty["elapsed"],
        "counters": result.stats.get("faults", {}),
    }


def _checkpoint_roundtrip() -> dict:
    """Mini barrier campaign run three ways: straight through; to a
    mid-round checkpoint whose machine is then discarded; and a fresh
    machine restored from that checkpoint replaying the rest. The final
    bytes of (1) and (3) must match -- the --check-partition-safety gate
    compares them."""
    import hashlib

    import numpy as np

    from repro.core.params import SamhitaConfig
    from repro.core.system import SamhitaSystem

    n_threads, rounds, cut_round = 4, 4, 2
    slice_bytes = 1024 * 8
    nbytes = n_threads * slice_bytes

    def config(interval):
        return SamhitaConfig(n_memory_servers=2, replication_factor=2,
                             fencing=True, checkpoint_interval=interval)

    def campaign(system, tids, state, start, end):
        bar = system.create_barrier(len(tids))

        def body(i, tid):
            if i == 0:
                state["addr"] = yield from system.malloc(tid, nbytes,
                                                        shared=True)
            yield from system.barrier_wait(tid, bar)
            addr = state["addr"] + i * slice_bytes
            for r in range(start, end):
                data = yield from system.mem_read(tid, addr, slice_bytes)
                arr = np.frombuffer(data, dtype=np.float64).copy()
                arr = arr * 1.25 + float((r + 1) * (i + 1))
                yield from system.mem_write(tid, addr, slice_bytes,
                                            arr.view(np.uint8))
                yield from system.barrier_wait(tid, bar)
            if i == 0:
                state["final"] = bytes(
                    (yield from system.mem_read(tid, state["addr"], nbytes)))

        for i, tid in enumerate(tids):
            system.process(body(i, tid), name=f"t{i}")
        system.run()

    def build(interval):
        system = SamhitaSystem.cluster(n_threads, config=config(interval))
        return system, [system.add_thread() for _ in range(n_threads)]

    straight_sys, tids = build(interval=1)
    straight: dict = {}
    campaign(straight_sys, tids, straight, 0, rounds)
    taken = straight_sys.stats.snapshot().get("checkpoints_taken", 0)

    doomed_sys, tids = build(interval=1)
    doomed: dict = {}
    campaign(doomed_sys, tids, doomed, 0, cut_round + 1)
    ckpt = doomed_sys.checkpoints.latest()

    restored_sys, tids = build(interval=0)
    restored_sys.restore_checkpoint(ckpt)
    restored: dict = {}
    campaign(restored_sys, tids, restored, cut_round + 1, rounds)

    return {
        "campaign": (f"{n_threads}-thread barrier rounds x{rounds}, "
                     f"restore after round {cut_round}"),
        "checkpoints_taken": taken,
        "checkpoint_pages": ckpt.page_count,
        "final_sha256": hashlib.sha256(straight["final"]).hexdigest(),
        "restored_sha256": hashlib.sha256(restored["final"]).hexdigest(),
        "roundtrip_identical": restored["final"] == straight["final"],
    }


def partition_safety_fingerprint() -> dict:
    """The --check-partition-safety gate's evidence:

    * a healthy run with ``fencing=True`` is bit-identical to the default
      build (the fence is pure bookkeeping until a failover mints an
      epoch);
    * a partition that severs one memory server of the fenced three-shard
      machine still produces bit-identical data, with the promotion and at
      least one fenced stale-epoch write on the record (zero stale writes
      APPLIED -- the data identity is the proof);
    * a checkpoint/restore round trip reproduces the straight-through
      final bytes.
    """
    from repro.core.params import SamhitaConfig
    from repro.faults import partition

    defaults, _ = _jacobi_fingerprint(None)
    fenced_idle, _ = _jacobi_fingerprint(SamhitaConfig(fencing=True))

    def fenced(faults=None):
        return SamhitaConfig(manager_shards=3, n_memory_servers=2,
                             replication_factor=2, fencing=True,
                             faults=faults)

    baseline, _ = _jacobi_fingerprint(fenced())
    plan = partition(11, ("node4",), start=4e-4, duration=3e-4)
    cut, cut_result = _jacobi_fingerprint(fenced(plan))
    membership = cut_result.stats.get("membership", {})
    return {
        "fencing_absent": defaults,
        "fencing_idle": fenced_idle,
        "partition": {
            "plan": "partition(seed=11, ('node4',), 4e-4 +3e-4)",
            "data_identical": (cut["grid_sha256"] == baseline["grid_sha256"]
                               and cut["gdiff"] == baseline["gdiff"]),
            "elapsed_baseline": baseline["elapsed"],
            "elapsed_cut": cut["elapsed"],
            "membership": {k: membership[k] for k in sorted(membership)},
        },
        "checkpoint": _checkpoint_roundtrip(),
    }


class _AggregatingExecutor(Executor):
    """Serial executor summing data-plane counters over unique Samhita cells."""

    KEYS = ("fetch_requests", "pages_fetched", "faults",
            "batched_line_fetches")

    def __init__(self, totals: dict):
        super().__init__(workers=0, cache=None)
        self.totals = totals
        self._seen: dict[str, object] = {}

    def map(self, specs):
        out = []
        for spec in specs:
            key = cell_key(spec)
            result = self._seen.get(key)
            if result is None:
                result = super().map([spec])[0]
                self._seen[key] = result
                if spec.backend == "samhita":
                    _absorb_stats(self.totals, result)
            out.append(result)
        return out


def _absorb_stats(totals: dict, result) -> None:
    cs = result.stats.get("compute_servers", {})
    for key in _AggregatingExecutor.KEYS:
        totals[key] = totals.get(key, 0) + cs.get(key, 0)
    prefetch = result.stats.get("prefetch", {})
    for key in ("prefetch_installs", "prefetch_hits"):
        totals[key] = totals.get(key, 0) + prefetch.get(key, 0)
    engine = result.stats.get("engine", {})
    totals["events_scheduled"] = (totals.get("events_scheduled", 0)
                                  + engine.get("scheduled_events", 0))


#: The Jacobi smoke campaign the prefetch gate measures: the canonical
#: functional Jacobi cell plus the fig12 --quick Samhita cells. (fig03's
#: per-thread arrays span two cache lines at --quick scale -- structurally
#: nothing to prefetch -- so it carries no signal for this gate.)
PREFETCH_GATE_FIGURE = "fig12"


def _prefetch_campaign(config) -> dict:
    """Run the Jacobi smoke campaign under one config; summed counters."""
    totals: dict = {}
    _, result = _jacobi_fingerprint(config)
    _absorb_stats(totals, result)
    with activate(_AggregatingExecutor(totals)):
        figures.FIGURES[PREFETCH_GATE_FIGURE](
            **_QUICK_KWARGS[PREFETCH_GATE_FIGURE], config=config)
    return totals


def prefetch_comparison() -> dict:
    """Compat vs adaptive data plane over the Jacobi smoke campaign.

    The ``--check-prefetch`` gate in tools/bench_report.py reads this
    block: remote line fetches (``fetch_requests``, one per home-server
    round trip) must drop by the gated fraction, prefetch accuracy must
    clear the gated floor, and the adaptive plane must not schedule more
    DES events than the compat plane.
    """
    from repro.core.params import SamhitaConfig

    compat = _prefetch_campaign(SamhitaConfig.compat_cache())
    adaptive = _prefetch_campaign(SamhitaConfig.adaptive_cache())
    installs = adaptive["prefetch_installs"]
    fetch_reduction = (1.0 - adaptive["fetch_requests"]
                       / compat["fetch_requests"]
                       if compat["fetch_requests"] else None)
    return {
        "campaign": ("jacobi 64x256x3 functional cell + "
                     f"{PREFETCH_GATE_FIGURE} --quick samhita cells"),
        "compat": compat,
        "adaptive": adaptive,
        "fetch_reduction": (round(fetch_reduction, 4)
                            if fetch_reduction is not None else None),
        "prefetch_accuracy": (round(adaptive["prefetch_hits"] / installs, 4)
                              if installs else 1.0),
        "accuracy_note": ("accuracy over adaptive-mode installs; an "
                          "install-free campaign (everything batched on "
                          "demand) counts as perfectly accurate"),
    }


#: Control-plane sweep points: (compute servers, manager shards). Shards
#: scale with the machine (16 compute servers per shard), which is the
#: deployment the flat-load claim is about: adding cells adds shards, and
#: the RPC load each shard absorbs stays constant.
SHARD_SWEEP = ((16, 1), (64, 4), (256, 16))
SHARD_SWEEP_ROUNDS = 3


def _sync_sweep_cell(n_compute: int, shards: int,
                     tree_barriers: bool) -> dict:
    """One sync-heavy cell: every thread loops lock/unlock + barrier.

    No data-plane traffic at all -- the cell isolates control-plane RPC
    load so ``manager_rpcs_by_shard`` measures exactly the lock/barrier
    protocol cost at this scale.
    """
    from repro.core.params import SamhitaConfig
    from repro.core.system import SamhitaSystem
    from repro.sim.engine import Timeout

    config = SamhitaConfig(manager_shards=shards, lock_owner_cache=True,
                           tree_barriers=tree_barriers)
    system = SamhitaSystem.cluster(n_compute, config=config)
    tids = [system.add_thread() for _ in range(n_compute)]
    locks = [system.create_lock() for _ in range(n_compute)]
    bar = system.create_barrier(n_compute)

    def body(i, tid):
        for _ in range(SHARD_SWEEP_ROUNDS):
            yield from system.acquire_lock(tid, locks[i])
            yield Timeout(1e-6)
            yield from system.release_lock(tid, locks[i])
            yield from system.barrier_wait(tid, bar)

    for i, tid in enumerate(tids):
        system.process(body(i, tid), name=f"t{i}")
    t0 = time.perf_counter()
    system.run()
    run_wall = time.perf_counter() - t0
    engine = system.engine
    report = system.stats_report()
    rows = report["manager_rpcs_by_shard"]
    total = sum(r["requests"] for r in rows)
    return {
        "n_compute": n_compute,
        "shards": shards,
        "tree_barriers": tree_barriers,
        "elapsed": system.engine.now,
        "engine": engine.variant,
        "run_wall_s": round(run_wall, 4),
        "events_scheduled": engine.scheduled_events,
        "events_coalesced": engine.coalesced_events,
        "epochs_run": getattr(engine, "epochs_run", 0),
        "events_per_sec": (round(engine.scheduled_events / run_wall)
                           if run_wall else 0),
        "total_manager_rpcs": total,
        "per_shard_mean": round(total / shards, 2),
        "per_shard_requests": [r["requests"] for r in rows],
        "barrier_rpcs": sum(r["barrier"] for r in rows),
        "lock_rpcs": sum(r["lock"] for r in rows),
        "lock_cache_hits": report.get("lock_cache", {})
        .get("lock_cache_hits", 0),
    }


def shard_scaling() -> dict:
    """16 -> 64 -> 256 compute-server sweep of the sharded control plane.

    The ``--check-shard-scaling`` gate in tools/bench_report.py reads this
    block: the ``manager_shards=1`` fingerprint must be bit-identical to
    the default build, per-shard RPC load must stay flat (<= 25%
    deviation) across the sweep, and hierarchical tree barriers must cut
    total barrier RPCs by >= 2x versus flat barriers at every point.
    """
    from repro.core.params import SamhitaConfig

    absent, _ = _jacobi_fingerprint(None)
    one, _ = _jacobi_fingerprint(SamhitaConfig(manager_shards=1))
    sweep = []
    for n_compute, shards in SHARD_SWEEP:
        tree = _sync_sweep_cell(n_compute, shards, tree_barriers=True)
        flat = _sync_sweep_cell(n_compute, shards, tree_barriers=False)
        tree["flat_barrier_rpcs"] = flat["barrier_rpcs"]
        tree["barrier_rpc_reduction"] = (
            round(flat["barrier_rpcs"] / tree["barrier_rpcs"], 2)
            if tree["barrier_rpcs"] else None)
        sweep.append(tree)
    means = [cell["per_shard_mean"] for cell in sweep]
    center = sum(means) / len(means)
    return {
        "campaign": (f"sync-heavy cell ({SHARD_SWEEP_ROUNDS} rounds of "
                     "private lock + full barrier per thread), "
                     "16 compute servers per shard"),
        "shards_absent": absent,
        "shards_one": one,
        "sweep": sweep,
        "per_shard_mean_deviation": (
            round(max(abs(m - center) for m in means) / center, 4)
            if center else None),
    }


#: Modeled round-trip *request* categories: one fabric message per modeled
#: round trip in both protocol shapes (replies -- ``page``/``recall_diff``
#: -- are the same trips seen from the other end and are not re-counted).
RT_REQUEST_CATEGORIES = ("fetch_req", "recall", "diff", "barrier_diff",
                         "fine_grain", "cr_page")


class _FabricSummingExecutor(Executor):
    """Serial executor summing fabric message counts over Samhita cells."""

    def __init__(self, totals: dict):
        super().__init__(workers=0, cache=None)
        self.totals = totals
        self._seen: dict[str, object] = {}

    def map(self, specs):
        out = []
        for spec in specs:
            key = cell_key(spec)
            result = self._seen.get(key)
            if result is None:
                result = super().map([spec])[0]
                self._seen[key] = result
                if spec.backend == "samhita":
                    fabric = result.stats.get("fabric", {})
                    for cat in RT_REQUEST_CATEGORIES:
                        self.totals[cat] = (self.totals.get(cat, 0)
                                            + fabric.get(f"messages.{cat}", 0))
            out.append(result)
        return out


def _rt_request_totals(config) -> dict:
    """Sum round-trip request messages over the fig12 smoke cells."""
    totals: dict = {}
    with activate(_FabricSummingExecutor(totals)):
        figures.FIGURES["fig12"](**_QUICK_KWARGS["fig12"], config=config)
    totals["total"] = sum(totals.values())
    return totals


def batched_rt_comparison() -> dict:
    """Batched vs per-operation protocol shape; the --check-batched-rt
    gate's evidence.

    Three facts recorded:

    * the ``batched_round_trips=False`` trajectory fingerprint, compared
      against :data:`PR8_FINGERPRINT` (the gate requires bit-identity --
      off must be the PR 8 protocol, not a near miss);
    * modeled round-trip request messages over the fig12 smoke cells,
      batched off vs on (the gate requires the reduction factor);
    * data identity between the two shapes on the canonical functional
      cell (the batching may change timing, never bytes), plus the
      on-state ``round_trips`` ledger snapshot.
    """
    from repro.core.params import SamhitaConfig

    off_fp, _ = _jacobi_fingerprint(SamhitaConfig(batched_round_trips=False))
    on_fp, on_result = _jacobi_fingerprint(None)
    off_req = _rt_request_totals(SamhitaConfig(batched_round_trips=False))
    on_req = _rt_request_totals(None)
    reduction = (round(off_req["total"] / on_req["total"], 2)
                 if on_req["total"] else None)
    return {
        "campaign": ("fig12 --quick samhita cells (modeled round-trip "
                     "request messages) + canonical jacobi cell "
                     "(fingerprints)"),
        "request_categories": list(RT_REQUEST_CATEGORIES),
        "off_requests": off_req,
        "on_requests": on_req,
        "trip_reduction": reduction,
        "off_fingerprint": off_fp,
        "pr8_fingerprint": PR8_FINGERPRINT,
        "off_identical_to_pr8": off_fp == PR8_FINGERPRINT,
        "data_identical_on_off": (
            on_fp["grid_sha256"] == off_fp["grid_sha256"]
            and on_fp["gdiff"] == off_fp["gdiff"]),
        "round_trips": on_result.stats.get("round_trips"),
    }


def _grayfail_fingerprint(config) -> dict:
    """Gray-failure acceptance cell: the canonical grid at six Jacobi
    iterations -- long enough for the backup's RTT window to warm up and
    the slow-server storm to drive hedges and breaker opens."""
    import hashlib

    from repro.experiments.harness import run_workload_direct
    from repro.kernels.jacobi import JacobiParams, spawn_jacobi

    params = JacobiParams(rows=64, cols=256, iterations=6,
                          collect_result=True)
    result = run_workload_direct("samhita", 4, spawn_jacobi, params,
                                 functional=True, config=config)
    gdiff, grid = result.threads[0].value
    return {
        "grid_sha256": hashlib.sha256(grid.tobytes()).hexdigest(),
        "gdiff": gdiff,
        "elapsed": result.elapsed,
    }, result


def grayfail_comparison() -> dict:
    """Gray-failure resilience evidence; the --check-grayfail gates' input.

    Four facts recorded:

    * the default-configuration trajectory fingerprint, compared against
      :data:`PR9_FINGERPRINT` (the off-gate requires bit-identity -- the
      hedging/breaker/shedding machinery must be unreachable when off);
    * data identity between the clean grayfail deployment and the same
      deployment under a 10x slow-server storm (gray failures may change
      timing, never bytes);
    * the hedged slowdown under that storm (the gate caps it at 2x);
    * the ``hedges`` counter namespace from the storm run (the gate
      requires hedges actually won and breakers actually opened), plus an
      unhedged control run of the same storm for the comparison row.
    """
    from repro.core.params import SamhitaConfig
    from repro.faults import slow_server

    off_fp, _ = _jacobi_fingerprint(None)
    storm = slow_server(11, "node1", factor=10.0, start=2e-4, duration=1.0)
    clean, _ = _grayfail_fingerprint(SamhitaConfig.grayfail())
    hedged, hedged_result = _grayfail_fingerprint(
        SamhitaConfig.grayfail(faults=storm))
    unhedged, _ = _grayfail_fingerprint(
        SamhitaConfig.grayfail(faults=storm, hedged_fetches=False))
    return {
        "campaign": ("jacobi 64x256x6 functional cell, grayfail deployment, "
                     "slow_server(seed=11, node1, factor=10)"),
        "off_fingerprint": off_fp,
        "pr9_fingerprint": PR9_FINGERPRINT,
        "off_identical_to_pr9": off_fp == PR9_FINGERPRINT,
        "data_identical": (
            hedged["grid_sha256"] == clean["grid_sha256"]
            and hedged["gdiff"] == clean["gdiff"]
            and unhedged["grid_sha256"] == clean["grid_sha256"]),
        "elapsed_clean": clean["elapsed"],
        "elapsed_hedged_storm": hedged["elapsed"],
        "elapsed_unhedged_storm": unhedged["elapsed"],
        "hedged_slowdown": (round(hedged["elapsed"] / clean["elapsed"], 3)
                            if clean["elapsed"] else None),
        "unhedged_slowdown": (round(unhedged["elapsed"] / clean["elapsed"], 3)
                              if clean["elapsed"] else None),
        "counters": hedged_result.stats.get("hedges", {}),
    }


def sweep_events_rate(best_of_n: int = 3) -> dict:
    """Sustained dispatch rate at the top of the shard sweep.

    Re-runs the 256-server sync-heavy cell ``best_of_n`` times and keeps
    the fastest run phase: the event count is deterministic, so only the
    wall-clock denominator jitters, and the max rate is the honest
    "sustained" figure on a shared box. The ``--check-events-rate`` gate
    in tools/bench_report.py reads this block.
    """
    n_compute, shards = SHARD_SWEEP[-1]
    best: dict | None = None
    for _ in range(best_of_n):
        cell = _sync_sweep_cell(n_compute, shards, tree_barriers=True)
        if best is None or cell["events_per_sec"] > best["events_per_sec"]:
            best = cell
    assert best is not None
    return {
        "campaign": (f"sync-heavy sweep cell, {n_compute} compute servers / "
                     f"{shards} shards, run phase only, best of {best_of_n}"),
        "engine": best["engine"],
        "events_scheduled": best["events_scheduled"],
        "events_coalesced": best["events_coalesced"],
        "epochs_run": best["epochs_run"],
        "run_wall_s": best["run_wall_s"],
        "events_per_sec": best["events_per_sec"],
        "best_of": best_of_n,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_perf.json",
                        help="output JSON path (default: ./BENCH_perf.json)")
    parser.add_argument("--best-of", type=int, default=3, metavar="N",
                        help="timed repetitions per configuration (min wins)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size for the workers phase "
                             "(default: min(4, cpu count))")
    args = parser.parse_args(argv)
    cpu_count = os.cpu_count()
    # Schedulable CPUs can be fewer than the physical count (container
    # affinity masks); the pool default must follow what this process can
    # actually use, and the fingerprint records both so a "cpus: 1" entry
    # from a pinned container is no longer mistaken for a 1-core host.
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        usable = cpu_count or 1
    # Default clamps to the host: a 4-worker pool on a 1-CPU box only adds
    # fork/IPC overhead. An explicit --workers is honoured as given.
    workers = args.workers if args.workers is not None else min(4, usable)

    print(f"smoke campaign: {', '.join(SMOKE_FIGURES)} (--quick scale)")

    # The serial phase is timed FIRST, before the fingerprint and sweep
    # phases grow the interpreter's GC population -- the seed baseline was
    # measured in a fresh process, so the comparison must be too.
    print(f"after_serial: best of {args.best_of} ...")
    serial_best, serial_runs = best_of(args.best_of, run_smoke)

    print("per-cell instrumentation pass ...")
    cells = measure_cells()

    print("faults-off fingerprint + chaos counters ...")
    faults_off = faults_off_fingerprint()
    chaos = chaos_counters()

    print("replication-off fingerprint + rf=2 overhead ...")
    replication_off = replication_off_fingerprint()
    replication = replication_overhead()

    print("prefetch comparison (compat vs adaptive data plane) ...")
    prefetch = prefetch_comparison()

    print("shard scaling sweep (16 -> 64 -> 256 compute servers) ...")
    shards = shard_scaling()

    print("partition-safety fingerprint (fencing, quorum, checkpoint) ...")
    partition_safety = partition_safety_fingerprint()

    print("batched round-trip comparison (off-pin + trip reduction) ...")
    batched_rt = batched_rt_comparison()

    print("gray-failure comparison (off-pin + slow-server storm) ...")
    grayfail = grayfail_comparison()

    print("sustained events/sec at the 256-server sweep point ...")
    rate = sweep_events_rate(best_of_n=max(args.best_of, 3))

    print(f"after_adaptive_cache: best of {args.best_of} ...")
    from repro.core.params import SamhitaConfig

    def run_adaptive():
        return run_smoke(config=SamhitaConfig.adaptive_cache())

    adaptive_best, adaptive_runs = best_of(args.best_of, run_adaptive)

    print(f"after_workers{workers}_cold: best of {args.best_of} ...")

    def run_cold():
        # Fresh cache every repetition: measures a genuinely cold campaign.
        return run_smoke(Executor(workers=workers, cache=ResultCache()))

    cold, cold_runs = best_of(args.best_of, run_cold)

    print(f"after_workers{workers}_cached (warm cache re-run) ...")
    # A shared persistent cache answers a repeated campaign without
    # simulating anything; measure that re-run cost.
    warm_cache = ResultCache()
    run_smoke(Executor(workers=workers, cache=warm_cache))
    warm_executor = Executor(workers=workers, cache=warm_cache)
    warm = run_smoke(warm_executor)

    seed = BASELINE_SEED["wall_s"]
    events_scheduled = sum(c["events"] for c in cells)
    events_coalesced = sum(c["events_coalesced"] for c in cells)
    seed_events = BASELINE_SEED["events_scheduled"]
    report = {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": cpu_count,
            "cpus_usable": usable,
            "workers_requested": args.workers,
            "workers_effective": workers,
            "engine_default": engine_variant(),
        },
        "smoke_figures": list(SMOKE_FIGURES),
        "baseline_seed": BASELINE_SEED,
        "events": {
            "scheduled": events_scheduled,
            "coalesced": events_coalesced,
            "scheduled_at_seed": seed_events,
            "reduction_vs_seed": round(seed_events / events_scheduled, 2)
            if events_scheduled else None,
        },
        "phases": {
            "after_serial": {
                "wall_s": round(serial_best, 3),
                "runs": [round(r, 3) for r in serial_runs],
                "speedup_vs_seed": round(seed / serial_best, 2),
                "engine": engine_variant(),
            },
            "after_adaptive_cache": {
                "wall_s": round(adaptive_best, 3),
                "runs": [round(r, 3) for r in adaptive_runs],
                "speedup_vs_seed": round(seed / adaptive_best, 2),
                "engine": engine_variant(),
                "config": "SamhitaConfig.adaptive_cache()",
                "fetch_reduction": prefetch["fetch_reduction"],
                "prefetch_accuracy": prefetch["prefetch_accuracy"],
            },
            f"after_workers{workers}_cold": {
                "wall_s": round(cold, 3),
                "runs": [round(r, 3) for r in cold_runs],
                "speedup_vs_seed": round(seed / cold, 2),
                "engine": engine_variant(),
            },
            f"after_workers{workers}_cached": {
                "wall_s": round(warm, 3),
                # A warm cache can answer the campaign in ~no wall time;
                # a division there yields a five-digit nonsense speedup
                # (and 0.0 s would divide by zero). None renders as
                # "cached" in tools/bench_report.py.
                "speedup_vs_seed": (round(seed / warm, 1)
                                    if warm >= 0.005 else None),
                "engine": engine_variant(),
                "cache_hits": warm_cache.hits,
            },
        },
        "events_rate": rate,
        "cells": cells,
        "prefetch": prefetch,
        "faults_off": faults_off,
        "chaos": chaos,
        "replication_off": replication_off,
        "replication": replication,
        "shard_scaling": shards,
        "partition_safety": partition_safety,
        "batched_rt": batched_rt,
        "grayfail": grayfail,
        "notes": [
            f"host has {usable} schedulable CPU(s); on a single-CPU host the "
            "pool adds no parallel speedup -- gains there come from the "
            "serial fast paths and the result cache (dedup + warm re-runs)",
            "simulated results are bit-identical across all configurations "
            "(asserted by tests/experiments/test_parallel_determinism.py)",
        ],
    }

    out = pathlib.Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {out}")
    print(f"  seed baseline        {seed:7.3f} s")
    print(f"  after_serial         {serial_best:7.3f} s  "
          f"({seed / serial_best:.2f}x vs seed)")
    print(f"  after_adaptive_cache {adaptive_best:7.3f} s  "
          f"({seed / adaptive_best:.2f}x vs seed; "
          f"fetches -{prefetch['fetch_reduction'] * 100:.0f}%, "
          f"accuracy {prefetch['prefetch_accuracy'] * 100:.0f}%)")
    print(f"  workers{workers} cold        {cold:7.3f} s  "
          f"({seed / cold:.2f}x vs seed)")
    warm_vs = f"({seed / warm:.0f}x vs seed)" if warm >= 0.005 else "(cached)"
    print(f"  workers{workers} warm cache  {warm:7.3f} s  {warm_vs}")
    print(f"  scheduled events     {events_scheduled:,} "
          f"({seed_events / events_scheduled:.2f}x fewer than seed; "
          f"{events_coalesced:,} coalesced)")
    ok = faults_off["injector_absent"] == faults_off["injector_silent"]
    print(f"  faults-off identity  {'bit-identical' if ok else 'DIVERGED'}")
    print(f"  chaos drop_storm     data_identical={chaos['data_identical']} "
          f"retransmits={chaos['counters'].get('retransmits', 0)}")
    repl_ok = replication_off["rf_absent"] == replication_off["rf_one"]
    print(f"  replication-off      "
          f"{'bit-identical' if repl_ok else 'DIVERGED'}")
    overhead = replication["elapsed_overhead"]
    print(f"  rf=2 healthy path    data_identical="
          f"{replication['data_identical']} "
          f"elapsed +{overhead * 100:.1f}% "
          f"ships={replication['counters'].get('repl_ships', 0)}")
    shards_ok = shards["shards_absent"] == shards["shards_one"]
    print(f"  shards-off           "
          f"{'bit-identical' if shards_ok else 'DIVERGED'}")
    dev = shards["per_shard_mean_deviation"]
    last = shards["sweep"][-1]
    print(f"  shard sweep          per-shard load dev {dev * 100:.1f}% "
          f"across {'/'.join(str(n) for n, _ in SHARD_SWEEP)} servers; "
          f"barriers -{last['barrier_rpc_reduction']:.0f}x at "
          f"{last['n_compute']}")
    print(f"  events/sec (256)     {rate['events_per_sec']:,}/s sustained "
          f"({rate['events_scheduled']:,} events in "
          f"{rate['run_wall_s']:.3f} s run phase, "
          f"{rate['engine']} engine)")
    print(f"  batched round trips  "
          f"{'off==PR8' if batched_rt['off_identical_to_pr8'] else 'off DIVERGED'}"
          f"  requests {batched_rt['off_requests']['total']:,} -> "
          f"{batched_rt['on_requests']['total']:,} "
          f"(-{batched_rt['trip_reduction']:.1f}x)  data_identical="
          f"{batched_rt['data_identical_on_off']}")
    gf = grayfail
    print(f"  gray failure         "
          f"{'off==PR9' if gf['off_identical_to_pr9'] else 'off DIVERGED'}"
          f"  storm slowdown {gf['hedged_slowdown']:.2f}x hedged "
          f"(unhedged {gf['unhedged_slowdown']:.2f}x)  "
          f"hedges_won={gf['counters'].get('hedges_won', 0)} "
          f"breaker_opens={gf['counters'].get('breaker_opens', 0)} "
          f"sheds={gf['counters'].get('sheds', 0)}  data_identical="
          f"{gf['data_identical']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
