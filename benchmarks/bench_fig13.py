"""Figure 13: molecular-dynamics strong-scaling speedup.

Paper claim: "the Samhita implementation tracks the Pthread implementation
very closely within a node and continues to scale very well up to 32 cores
... applications that are computationally intensive (the computation per
particle is O(n)) can easily mask the synchronization overhead."
"""

from benchmarks.conftest import run_figure
from repro.experiments import figures


def test_fig13_md_speedup(benchmark, archive):
    fr = archive(run_figure(benchmark, figures.fig13))
    pth, smh = fr.series["pthreads"], fr.series["samhita"]
    # Tracks Pthreads very closely within the node.
    for cores in (2, 4, 8):
        assert smh.y_at(cores) > 0.9 * pth.y_at(cores)
    # Continues to scale very well up to 32 cores.
    assert smh.y_at(16) > 12
    assert smh.y_at(32) > 20
