"""Figure 10: synchronization time vs ordinary-region size (S) at P=16.

Paper claim: "when there is no false sharing (local allocation) the increase
in synchronization cost is hardly noticeable. False sharing does have an
impact ... [but] even with increased false sharing the increase in
synchronization cost is not dramatic."
"""

from benchmarks.conftest import run_figure
from repro.experiments import figures


def test_fig10_ordinary_region_sync(benchmark, archive):
    fr = archive(run_figure(benchmark, figures.fig10))
    local_growth = fr.series["local"].y_at(8) / fr.series["local"].y_at(1)
    stride_growth = fr.series["stride"].y_at(8) / fr.series["stride"].y_at(1)
    assert local_growth < 1.3          # hardly noticeable
    assert stride_growth > local_growth  # false sharing has an impact
    assert stride_growth < 4.0         # but not dramatic
