"""Figure 8: compute time vs cores for S in {1,2,4,8}, GLOBAL STRIDED.

Paper claim: "due to the access pattern which increases false sharing, we
see that there is a higher penalty incurred in the compute time. This
penalty increases as the amount of data increases."
"""

from benchmarks.conftest import run_figure
from repro.experiments import figures


def test_fig08_strided_s_sweep(benchmark, archive):
    fr = archive(run_figure(benchmark, figures.fig08))
    # Penalty grows with cores.
    assert fr.series["S = 4"].y_at(32) > 2 * fr.series["S = 4"].y_at(1)
    # Higher penalty than the global case at the same point.
    glob = figures.fig07(smh_cores=(16,), s_values=(4,)).series["S = 4"].y_at(16)
    assert fr.series["S = 4"].y_at(16) > glob
