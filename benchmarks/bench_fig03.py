"""Figure 3: normalized compute time vs cores, LOCAL allocation.

Paper claim: "the normalized compute time for Pthreads and Samhita are very
similar. In the absence of false sharing the time spent in computation for
Samhita is very similar to the equivalent Pthread implementation, even for a
relatively small amount of computation (small M)."
"""

from benchmarks.conftest import run_figure
from repro.experiments import figures


def test_fig03_local_allocation(benchmark, archive):
    fr = archive(run_figure(benchmark, figures.fig03))
    for M in (1, 10, 100):
        smh = fr.series[f"smh, M={M}"]
        # Samhita tracks Pthreads closely at every thread count.
        for cores in smh.xs:
            assert smh.y_at(cores) < 1.6, (M, cores, smh.y_at(cores))
    # And exactly matches at one thread.
    assert abs(fr.series["smh, M=100"].y_at(1) - 1.0) < 0.1
