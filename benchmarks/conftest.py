"""Shared helpers for the figure benchmarks.

Each ``bench_figNN.py`` regenerates one paper figure at full paper-scale
parameters, asserts the qualitative shape the paper reports, and archives
the rendered table under ``benchmarks/results/`` (EXPERIMENTS.md quotes
those files).

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import format_figure

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def archive():
    """Returns a function that renders + saves + prints a FigureResult."""

    def _archive(fr):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = format_figure(fr)
        (RESULTS_DIR / f"{fr.figure}.txt").write_text(text + "\n")
        print()
        print(text)
        return fr

    return _archive


def run_figure(benchmark, figure_fn, **kwargs):
    """Execute a figure sweep exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(lambda: figure_fn(**kwargs), rounds=1,
                              iterations=1)
