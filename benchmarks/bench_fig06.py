"""Figure 6: compute time vs cores for S in {1,2,4,8}, LOCAL allocation.

Paper claim: "computation time increases with the amount of work and amount
of data accessed in the ordinary region ... However, compute time per thread
does not increase as the number of threads increases" (no false sharing =>
no extra penalty).
"""

from benchmarks.conftest import run_figure
from repro.experiments import figures


def test_fig06_local_s_sweep(benchmark, archive):
    fr = archive(run_figure(benchmark, figures.fig06))
    # Stacked in S: double the rows, double the compute time.
    assert fr.series["S = 8"].y_at(1) > 3 * fr.series["S = 2"].y_at(1)
    # Flat in cores for every S.
    for S in (1, 2, 4, 8):
        series = fr.series[f"S = {S}"]
        assert series.y_at(32) < 1.25 * series.y_at(1)
