"""Figure 5: normalized compute time vs cores, GLOBAL STRIDED access.

Paper claim: "when the amount of computation performed is relatively small
there is a higher penalty compared to the global allocation case. However,
once again this cost can be amortized by increasing the amount of compute."
"""

from benchmarks.conftest import run_figure
from repro.experiments import figures


def test_fig05_global_strided(benchmark, archive):
    fr = archive(run_figure(benchmark, figures.fig05))
    strided_m1 = fr.series["smh, M=1"].y_at(8)
    # Higher penalty than the global case at small M...
    global_m1 = figures.fig04(smh_cores=(8,), m_values=(1,),
                              pth_cores=(1,)).series["smh, M=1"].y_at(8)
    assert strided_m1 > global_m1
    # ...amortized by compute.
    assert fr.series["smh, M=100"].y_at(8) < strided_m1
