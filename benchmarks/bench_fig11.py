"""Figure 11: synchronization time (log scale) vs cores, both systems.

Paper claim: "Samhita does incur an increased cost for synchronization ...
[but it] is not exceptionally high when compared to Pthreads, and the
increase with the number of threads is not dramatic."
"""

from benchmarks.conftest import run_figure
from repro.experiments import figures


def test_fig11_sync_time_both_systems(benchmark, archive):
    fr = archive(run_figure(benchmark, figures.fig11))
    # DSM synchronization sits orders of magnitude above hardware sync
    # (it performs memory-consistency work), on a log plot: 1-3 decades.
    for label in ("local", "global", "stride"):
        ratio = fr.series[f"smh_{label}"].y_at(8) / fr.series[f"pth_{label}"].y_at(8)
        assert 5 < ratio < 5000, (label, ratio)
    # Growth with threads is not dramatic (sub-quadratic over 32x threads).
    growth = fr.series["smh_local"].y_at(32) / fr.series["smh_local"].y_at(1)
    assert growth < 64
    # False sharing costs extra sync time.
    assert fr.series["smh_stride"].y_at(16) > fr.series["smh_local"].y_at(16)
