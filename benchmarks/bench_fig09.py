"""Figure 9: compute time vs ordinary-region size (S) at P=16.

Paper claim: "as the size of the ordinary region grows, the compute time
increases as expected, and the penalty incurred in compute time increases
based on the amount of false sharing."
"""

from benchmarks.conftest import run_figure
from repro.experiments import figures


def test_fig09_ordinary_region_compute(benchmark, archive):
    fr = archive(run_figure(benchmark, figures.fig09))
    for label in ("local", "global", "stride"):
        series = fr.series[label]
        assert series.y_at(8) > series.y_at(1)  # grows with S
    # Penalty ordered by false-sharing intensity at the largest S.
    assert (fr.series["local"].y_at(8) < fr.series["global"].y_at(8)
            <= fr.series["stride"].y_at(8))
