"""Figure 12: Jacobi strong-scaling speedup, Pthreads vs Samhita.

Paper claim: "the Samhita implementation shows good speedup up to 16
processors. And within a node Samhita tracks the Pthread implementation
very well."
"""

from benchmarks.conftest import run_figure
from repro.experiments import figures


def test_fig12_jacobi_speedup(benchmark, archive):
    fr = archive(run_figure(benchmark, figures.fig12))
    pth, smh = fr.series["pthreads"], fr.series["samhita"]
    # Pthreads baseline is near-linear on one node.
    assert pth.y_at(8) > 6.0
    # Samhita tracks Pthreads within a node.
    assert smh.y_at(2) > 0.8 * pth.y_at(2)
    assert smh.y_at(8) > 0.55 * pth.y_at(8)
    # Good speedup up to 16...
    assert smh.y_at(16) > smh.y_at(8) > smh.y_at(4) > smh.y_at(2)
    # ...then the nearest-neighbour communication stops it scaling.
    assert smh.y_at(32) < 1.3 * smh.y_at(16)
